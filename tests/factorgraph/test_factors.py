"""Unit tests for repro.factorgraph.factors."""

import numpy as np
import pytest

from repro.exceptions import FactorShapeError, VariableDomainError
from repro.factorgraph.factors import Factor, observation_factor, prior_factor, uniform_factor
from repro.factorgraph.variables import CORRECT, INCORRECT, BinaryVariable


@pytest.fixture
def two_variables():
    return BinaryVariable("a"), BinaryVariable("b")


class TestFactorConstruction:
    def test_table_shape_must_match_variables(self, two_variables):
        a, b = two_variables
        with pytest.raises(FactorShapeError):
            Factor("f", (a, b), np.ones((2, 3)))

    def test_negative_entries_rejected(self, two_variables):
        a, b = two_variables
        table = np.ones((2, 2))
        table[0, 0] = -0.1
        with pytest.raises(FactorShapeError):
            Factor("f", (a, b), table)

    def test_all_zero_table_rejected(self, two_variables):
        a, b = two_variables
        with pytest.raises(FactorShapeError):
            Factor("f", (a, b), np.zeros((2, 2)))

    def test_duplicate_variable_rejected(self):
        a = BinaryVariable("a")
        with pytest.raises(FactorShapeError):
            Factor("f", (a, a), np.ones((2, 2)))

    def test_empty_name_rejected(self, two_variables):
        a, b = two_variables
        with pytest.raises(FactorShapeError):
            Factor("", (a, b), np.ones((2, 2)))

    def test_arity_and_variable_names(self, two_variables):
        a, b = two_variables
        factor = Factor("f", (a, b), np.ones((2, 2)))
        assert factor.arity == 2
        assert factor.variable_names == ("a", "b")


class TestFactorEvaluation:
    def test_value_reads_table_entry(self, two_variables):
        a, b = two_variables
        table = np.array([[0.1, 0.2], [0.3, 0.4]])
        factor = Factor("f", (a, b), table)
        assert factor.value({"a": CORRECT, "b": CORRECT}) == pytest.approx(0.1)
        assert factor.value({"a": INCORRECT, "b": CORRECT}) == pytest.approx(0.3)
        assert factor.value({"a": INCORRECT, "b": INCORRECT}) == pytest.approx(0.4)

    def test_value_requires_all_variables(self, two_variables):
        a, b = two_variables
        factor = Factor("f", (a, b), np.ones((2, 2)))
        with pytest.raises(VariableDomainError):
            factor.value({"a": CORRECT})

    def test_assignments_enumerates_joint_domain(self, two_variables):
        a, b = two_variables
        factor = Factor("f", (a, b), np.ones((2, 2)))
        assignments = list(factor.assignments())
        assert len(assignments) == 4
        assert {"a": CORRECT, "b": INCORRECT} in assignments

    def test_axis_of_unknown_variable_raises(self, two_variables):
        a, b = two_variables
        factor = Factor("f", (a, b), np.ones((2, 2)))
        with pytest.raises(VariableDomainError):
            factor.axis_of("c")


class TestMessageTo:
    def test_message_without_incoming_sums_table(self, two_variables):
        a, b = two_variables
        table = np.array([[0.1, 0.2], [0.3, 0.4]])
        factor = Factor("f", (a, b), table)
        message = factor.message_to("a", {})
        assert message == pytest.approx([0.3, 0.7])

    def test_message_weights_by_incoming(self, two_variables):
        a, b = two_variables
        table = np.array([[0.1, 0.2], [0.3, 0.4]])
        factor = Factor("f", (a, b), table)
        message = factor.message_to("a", {"b": np.array([1.0, 0.0])})
        assert message == pytest.approx([0.1, 0.3])

    def test_message_shape_mismatch_raises(self, two_variables):
        a, b = two_variables
        factor = Factor("f", (a, b), np.ones((2, 2)))
        with pytest.raises(FactorShapeError):
            factor.message_to("a", {"b": np.array([1.0, 0.0, 0.0])})

    def test_unary_factor_message_is_table(self):
        a = BinaryVariable("a")
        factor = Factor("f", (a,), np.array([0.7, 0.3]))
        assert factor.message_to("a", {}) == pytest.approx([0.7, 0.3])

    def test_unknown_incoming_key_raises(self, two_variables):
        """Regression: a misspelled mapping name used to be silently treated
        as a unit message instead of failing loudly."""
        a, b = two_variables
        factor = Factor("f", (a, b), np.ones((2, 2)))
        with pytest.raises(VariableDomainError, match="unknown"):
            factor.message_to("a", {"B": np.array([1.0, 0.0])})

    def test_target_variable_in_incoming_is_ignored(self, two_variables):
        """The target's own message is legal input (it spans the factor) and
        must not affect the outgoing message."""
        a, b = two_variables
        table = np.array([[0.1, 0.2], [0.3, 0.4]])
        factor = Factor("f", (a, b), table)
        with_target = factor.message_to(
            "a", {"a": np.array([0.0, 1.0]), "b": np.array([1.0, 0.0])}
        )
        without_target = factor.message_to("a", {"b": np.array([1.0, 0.0])})
        assert with_target == pytest.approx(without_target)


class TestFactorBuilders:
    def test_prior_factor_values(self):
        a = BinaryVariable("a")
        factor = prior_factor(a, 0.7)
        assert factor.table == pytest.approx([0.7, 0.3])

    def test_prior_factor_epsilon_guard(self):
        a = BinaryVariable("a")
        factor = prior_factor(a, 1.0)
        assert factor.table[1] > 0.0
        assert factor.table[0] == pytest.approx(1.0)

    def test_prior_factor_rejects_out_of_range(self):
        a = BinaryVariable("a")
        with pytest.raises(FactorShapeError):
            prior_factor(a, 1.5)

    def test_uniform_factor(self):
        a = BinaryVariable("a")
        factor = uniform_factor(a)
        assert factor.table == pytest.approx([1.0, 1.0])

    def test_observation_factor_clamps(self):
        a = BinaryVariable("a")
        factor = observation_factor(a, INCORRECT)
        assert factor.table[1] == pytest.approx(1.0)
        assert factor.table[0] <= 1e-8

    def test_observation_factor_soft(self):
        a = BinaryVariable("a")
        factor = observation_factor(a, CORRECT, strength=0.8)
        assert factor.table[0] == pytest.approx(0.8)
        assert factor.table[1] == pytest.approx(0.2)

    def test_observation_factor_bad_strength(self):
        a = BinaryVariable("a")
        with pytest.raises(FactorShapeError):
            observation_factor(a, CORRECT, strength=0.0)

    def test_normalized_sums_to_one(self):
        a = BinaryVariable("a")
        factor = Factor("f", (a,), np.array([2.0, 6.0]))
        assert factor.normalized().table == pytest.approx([0.25, 0.75])
