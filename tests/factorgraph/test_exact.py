"""Unit tests for exact inference by enumeration."""

import numpy as np
import pytest

from repro.exceptions import InferenceError
from repro.factorgraph.exact import exact_joint, exact_marginals, relative_error
from repro.factorgraph.factors import Factor, observation_factor, prior_factor
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.variables import CORRECT, INCORRECT, BinaryVariable


def independent_graph():
    graph = FactorGraph()
    a = graph.add_variable(BinaryVariable("a"))
    b = graph.add_variable(BinaryVariable("b"))
    graph.add_factor(prior_factor(a, 0.8))
    graph.add_factor(prior_factor(b, 0.3))
    return graph


class TestExactMarginals:
    def test_independent_variables_keep_their_priors(self):
        marginals = exact_marginals(independent_graph())
        assert marginals["a"][0] == pytest.approx(0.8, abs=1e-9)
        assert marginals["b"][0] == pytest.approx(0.3, abs=1e-9)

    def test_correlated_variables(self):
        graph = FactorGraph()
        a = graph.add_variable(BinaryVariable("a"))
        b = graph.add_variable(BinaryVariable("b"))
        graph.add_factor(prior_factor(a, 0.5))
        # b copies a exactly.
        graph.add_factor(Factor("copy", (a, b), np.array([[1.0, 0.0], [0.0, 1.0]])))
        graph.add_factor(observation_factor(b, CORRECT))
        marginals = exact_marginals(graph)
        assert marginals["a"][0] == pytest.approx(1.0, abs=1e-6)

    def test_marginals_sum_to_one(self):
        marginals = exact_marginals(independent_graph())
        for vector in marginals.values():
            assert float(np.sum(vector)) == pytest.approx(1.0)

    def test_contradictory_evidence_raises(self):
        graph = FactorGraph()
        a = graph.add_variable(BinaryVariable("a"))
        graph.add_factor(Factor("yes", (a,), np.array([1.0, 0.0])))
        graph.add_factor(Factor("no", (a,), np.array([0.0, 1.0])))
        with pytest.raises(InferenceError):
            exact_marginals(graph)


class TestExactJoint:
    def test_joint_enumerates_all_assignments(self):
        joint = exact_joint(independent_graph())
        assert len(joint) == 4
        assert joint[(CORRECT, CORRECT)] == pytest.approx(0.8 * 0.3, rel=1e-6)
        assert joint[(INCORRECT, INCORRECT)] == pytest.approx(0.2 * 0.7, rel=1e-6)

    def test_joint_total_mass_matches_product_of_priors(self):
        joint = exact_joint(independent_graph())
        assert sum(joint.values()) == pytest.approx(1.0, rel=1e-6)


class TestRelativeError:
    def test_zero_for_identical_marginals(self):
        marginals = exact_marginals(independent_graph())
        assert relative_error(marginals, marginals) == 0.0

    def test_reports_largest_relative_deviation(self):
        exact = {"a": np.array([0.5, 0.5]), "b": np.array([0.8, 0.2])}
        approx = {"a": np.array([0.55, 0.45]), "b": np.array([0.8, 0.2])}
        assert relative_error(approx, exact) == pytest.approx(0.1)

    def test_respects_variable_selection(self):
        exact = {"a": np.array([0.5, 0.5]), "b": np.array([0.8, 0.2])}
        approx = {"a": np.array([0.55, 0.45]), "b": np.array([0.4, 0.6])}
        assert relative_error(approx, exact, variable_names=["a"]) == pytest.approx(0.1)
