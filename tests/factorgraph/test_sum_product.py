"""Unit tests for the loopy sum–product engine."""

import numpy as np
import pytest

from repro import constants
from repro.exceptions import ConvergenceError, FactorGraphError
from repro.factorgraph.exact import exact_marginals
from repro.factorgraph.factors import Factor, prior_factor
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.sum_product import (
    SumProduct,
    SumProductOptions,
    SumProductResult,
    run_sum_product,
)
from repro.factorgraph.variables import CORRECT, INCORRECT, BinaryVariable, DiscreteVariable


def single_variable_graph(prior=0.7):
    graph = FactorGraph("single")
    x = graph.add_variable(BinaryVariable("x"))
    graph.add_factor(prior_factor(x, prior))
    return graph


def tree_graph():
    """Prior on x1 plus a correlation factor linking x1 and x2."""
    graph = FactorGraph("tree")
    x1 = graph.add_variable(BinaryVariable("x1"))
    x2 = graph.add_variable(BinaryVariable("x2"))
    graph.add_factor(prior_factor(x1, 0.9))
    # x2 strongly follows x1.
    graph.add_factor(Factor("link", (x1, x2), np.array([[0.9, 0.1], [0.1, 0.9]])))
    return graph


def loopy_graph():
    """Three variables pairwise linked — one loop."""
    graph = FactorGraph("loop")
    a = graph.add_variable(BinaryVariable("a"))
    b = graph.add_variable(BinaryVariable("b"))
    c = graph.add_variable(BinaryVariable("c"))
    agree = np.array([[0.8, 0.2], [0.2, 0.8]])
    graph.add_factor(prior_factor(a, 0.7))
    graph.add_factor(Factor("ab", (a, b), agree))
    graph.add_factor(Factor("bc", (b, c), agree))
    graph.add_factor(Factor("ca", (c, a), agree))
    return graph


class TestOptionsValidation:
    def test_bad_max_iterations(self):
        with pytest.raises(FactorGraphError):
            SumProductOptions(max_iterations=0)

    def test_bad_damping(self):
        with pytest.raises(FactorGraphError):
            SumProductOptions(damping=1.0)

    def test_bad_send_probability(self):
        with pytest.raises(FactorGraphError):
            SumProductOptions(send_probability=0.0)

    def test_bad_tolerance(self):
        with pytest.raises(FactorGraphError):
            SumProductOptions(tolerance=0.0)


class TestExactnessOnTrees:
    def test_single_variable_marginal_equals_prior(self):
        result = run_sum_product(single_variable_graph(0.7))
        assert result.probability_correct("x") == pytest.approx(0.7, abs=1e-6)

    def test_tree_matches_exact_inference(self):
        graph = tree_graph()
        result = run_sum_product(graph)
        exact = exact_marginals(graph)
        for name, marginal in exact.items():
            assert result.marginals[name] == pytest.approx(marginal, abs=1e-6)

    def test_tree_converges_quickly(self):
        result = run_sum_product(tree_graph())
        assert result.converged
        assert result.iterations <= 5


class TestLoopyBehaviour:
    def test_loopy_graph_converges(self):
        result = run_sum_product(loopy_graph(), max_iterations=200)
        assert result.converged

    def test_loopy_result_close_to_exact(self):
        graph = loopy_graph()
        result = run_sum_product(graph, max_iterations=200)
        exact = exact_marginals(graph)
        for name in exact:
            assert abs(result.probability_correct(name) - float(exact[name][0])) < 0.1

    def test_damping_reaches_same_fixed_point(self):
        graph = loopy_graph()
        plain = run_sum_product(graph, max_iterations=300)
        damped = run_sum_product(graph, max_iterations=300, damping=0.5)
        for name in plain.marginals:
            assert plain.marginals[name] == pytest.approx(damped.marginals[name], abs=1e-3)

    def test_strict_mode_raises_when_not_converged(self):
        with pytest.raises(ConvergenceError):
            run_sum_product(loopy_graph(), max_iterations=1, strict=True)


class TestMessageLoss:
    def test_lossy_run_still_converges_to_same_beliefs(self):
        graph = loopy_graph()
        reliable = run_sum_product(graph, max_iterations=300)
        lossy = run_sum_product(
            graph, max_iterations=2000, send_probability=0.5, seed=7
        )
        assert lossy.converged
        for name in reliable.marginals:
            assert lossy.marginals[name] == pytest.approx(
                reliable.marginals[name], abs=5e-3
            )

    def test_lossy_run_needs_more_iterations(self):
        graph = loopy_graph()
        reliable = run_sum_product(graph, max_iterations=500, tolerance=1e-7)
        lossy = run_sum_product(
            graph, max_iterations=2000, tolerance=1e-7, send_probability=0.3, seed=3
        )
        assert lossy.iterations > reliable.iterations


class TestResultAccessors:
    def test_history_recorded_when_requested(self):
        result = run_sum_product(loopy_graph(), max_iterations=20, record_history=True)
        assert len(result.history) == result.iterations
        trajectory = result.history_of("a")
        assert len(trajectory) == result.iterations
        assert all(0.0 <= value <= 1.0 for value in trajectory)

    def test_history_empty_by_default(self):
        result = run_sum_product(loopy_graph(), max_iterations=20)
        assert result.history == []

    def test_marginals_normalised(self):
        result = run_sum_product(loopy_graph(), max_iterations=50)
        for marginal in result.marginals.values():
            assert float(np.sum(marginal)) == pytest.approx(1.0)

    def test_isolated_variable_gets_uniform_belief(self):
        graph = loopy_graph()
        graph.add_variable(BinaryVariable("isolated"))
        result = run_sum_product(graph, max_iterations=20)
        assert result.marginals["isolated"] == pytest.approx([0.5, 0.5])

    def test_probability_correct_resolves_domain_order(self):
        """Regression: P(correct) used to hard-code index 0; it must follow
        the variable's actual domain ordering."""
        graph = FactorGraph("flipped")
        x = graph.add_variable(
            DiscreteVariable("x", domain=(INCORRECT, CORRECT))
        )
        graph.add_factor(Factor("prior", (x,), np.array([0.3, 0.7])))
        result = run_sum_product(graph, record_history=True)
        assert result.probability_correct("x") == pytest.approx(0.7, abs=1e-6)
        assert result.history_of("x")[-1] == pytest.approx(0.7, abs=1e-6)

    def test_probability_correct_rejects_non_correctness_domain(self):
        graph = FactorGraph("ternary")
        x = graph.add_variable(
            DiscreteVariable("x", domain=("red", "green", "blue"))
        )
        graph.add_factor(Factor("prior", (x,), np.array([0.2, 0.3, 0.5])))
        result = run_sum_product(graph)
        with pytest.raises(FactorGraphError, match="probability_correct"):
            result.probability_correct("x")
        with pytest.raises(FactorGraphError, match="probability_correct"):
            result.history_of("x")

    def test_handmade_result_without_domains_assumes_binary_layout(self):
        result = SumProductResult(
            marginals={"x": np.array([0.8, 0.2]), "y": np.array([0.1, 0.2, 0.7])},
            iterations=1,
            converged=True,
            final_change=0.0,
        )
        assert result.probability_correct("x") == pytest.approx(0.8)
        with pytest.raises(FactorGraphError):
            result.probability_correct("y")


class TestSharedDefaults:
    def test_options_read_shared_constants(self):
        options = SumProductOptions()
        assert options.max_iterations == constants.DEFAULT_MAX_ITERATIONS
        assert options.tolerance == constants.DEFAULT_TOLERANCE
        assert options.damping == constants.DEFAULT_DAMPING
        assert options.send_probability == constants.DEFAULT_SEND_PROBABILITY
        assert options.backend == constants.DEFAULT_BACKEND

    def test_embedded_defaults_match_sum_product_defaults(self):
        """Regression: the two engines used to disagree (1e-6 vs 1e-4)."""
        from repro.core.embedded import EmbeddedOptions

        embedded = EmbeddedOptions()
        centralised = SumProductOptions()
        assert embedded.tolerance == centralised.tolerance
        assert embedded.max_rounds == centralised.max_iterations

    def test_default_rng_is_deterministic(self):
        """Two lossy runs without explicit seeds share DEFAULT_SEED and must
        produce identical trajectories."""
        first = run_sum_product(loopy_graph(), max_iterations=40, send_probability=0.5)
        second = run_sum_product(loopy_graph(), max_iterations=40, send_probability=0.5)
        assert first.iterations == second.iterations
        for name, marginal in first.marginals.items():
            assert second.marginals[name] == pytest.approx(marginal)

    def test_transport_default_seed_is_deterministic(self):
        from repro.core.embedded import MessageTransport

        draws = [MessageTransport(0.5).try_send() for _ in range(20)]
        redraws = [MessageTransport(0.5).try_send() for _ in range(20)]
        assert draws != [True] * 20  # actually lossy
        first = MessageTransport(0.5)
        second = MessageTransport(0.5)
        assert [first.try_send() for _ in range(50)] == [
            second.try_send() for _ in range(50)
        ]
        assert draws == redraws

    def test_invalid_backend_rejected(self):
        with pytest.raises(FactorGraphError):
            SumProductOptions(backend="gpu")
