"""Unit tests for repro.factorgraph.variables."""

import pytest

from repro.exceptions import VariableDomainError
from repro.factorgraph.variables import (
    BINARY_DOMAIN,
    CORRECT,
    INCORRECT,
    BinaryVariable,
    DiscreteVariable,
    mapping_variable_name,
    validate_states,
)


class TestDiscreteVariable:
    def test_default_domain_is_binary(self):
        variable = DiscreteVariable("m1")
        assert variable.domain == BINARY_DOMAIN
        assert variable.cardinality == 2

    def test_custom_domain(self):
        variable = DiscreteVariable("color", domain=("red", "green", "blue"))
        assert variable.cardinality == 3
        assert variable.index_of("green") == 1

    def test_index_of_correct_is_zero(self):
        variable = DiscreteVariable("m")
        assert variable.index_of(CORRECT) == 0
        assert variable.index_of(INCORRECT) == 1

    def test_unknown_state_raises(self):
        variable = DiscreteVariable("m")
        with pytest.raises(VariableDomainError):
            variable.index_of("maybe")

    def test_empty_name_rejected(self):
        with pytest.raises(VariableDomainError):
            DiscreteVariable("")

    def test_single_state_domain_rejected(self):
        with pytest.raises(VariableDomainError):
            DiscreteVariable("m", domain=("only",))

    def test_duplicate_states_rejected(self):
        with pytest.raises(VariableDomainError):
            DiscreteVariable("m", domain=("a", "a"))

    def test_variables_are_hashable_and_equal_by_value(self):
        assert DiscreteVariable("m") == DiscreteVariable("m")
        assert hash(DiscreteVariable("m")) == hash(DiscreteVariable("m"))
        assert DiscreteVariable("m") != DiscreteVariable("n")


class TestBinaryVariable:
    def test_is_discrete_variable_with_binary_domain(self):
        variable = BinaryVariable("m[p1->p2]@Creator")
        assert isinstance(variable, DiscreteVariable)
        assert variable.domain == (CORRECT, INCORRECT)

    def test_name_preserved(self):
        assert BinaryVariable("x").name == "x"


class TestMappingVariableName:
    def test_coarse_granularity(self):
        assert mapping_variable_name("p2", "p3") == "m[p2->p3]"

    def test_fine_granularity(self):
        assert mapping_variable_name("p2", "p3", "Creator") == "m[p2->p3]@Creator"


class TestValidateStates:
    def test_accepts_valid_assignment(self):
        variables = [BinaryVariable("a"), BinaryVariable("b")]
        validate_states(variables, [CORRECT, INCORRECT])

    def test_rejects_wrong_length(self):
        variables = [BinaryVariable("a"), BinaryVariable("b")]
        with pytest.raises(VariableDomainError):
            validate_states(variables, [CORRECT])

    def test_rejects_unknown_state(self):
        variables = [BinaryVariable("a")]
        with pytest.raises(VariableDomainError):
            validate_states(variables, ["bogus"])
