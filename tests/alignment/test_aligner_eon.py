"""Unit tests for the automatic aligner and the synthetic EON scenario."""

import pytest

from repro.alignment.aligner import OntologyAligner
from repro.alignment.eon import (
    CANONICAL_CONCEPTS,
    build_eon_network,
    eon_ground_truth,
    eon_ontologies,
)
from repro.alignment.ontology import Concept, Ontology
from repro.exceptions import AlignmentError


@pytest.fixture(scope="module")
def eon():
    return build_eon_network()


class TestOntologyAligner:
    def test_align_identical_ontologies_is_perfect(self):
        first = Ontology("a", concepts=["Author", "Title", "Year"])
        second = Ontology("b", concepts=["Author", "Title", "Year"])
        truth = {("a", c): c for c in first.concept_names}
        truth.update({("b", c): c for c in second.concept_names})
        aligner = OntologyAligner(ground_truth=truth)
        result = aligner.align(first, second)
        assert result.correspondence_count == 3
        assert result.erroneous_count == 0
        assert result.error_rate == 0.0

    def test_align_self_rejected(self):
        ontology = Ontology("a", concepts=["Author"])
        with pytest.raises(AlignmentError):
            OntologyAligner().align(ontology, ontology)

    def test_threshold_filters_weak_matches(self):
        first = Ontology("a", concepts=["Zebra"])
        second = Ontology("b", concepts=["Title"])
        result = OntologyAligner(threshold=0.9).align(first, second)
        assert result.correspondence_count == 0
        assert result.unmatched_source_concepts == ("Zebra",)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(AlignmentError):
            OntologyAligner(threshold=0.0)

    def test_without_ground_truth_labels_are_unknown(self):
        first = Ontology("a", concepts=["Author"])
        second = Ontology("b", concepts=["Author"])
        result = OntologyAligner().align(first, second)
        assert result.mapping.correspondence_for("Author").is_correct is None

    def test_align_all_covers_requested_pairs(self):
        ontologies = [Ontology(n, concepts=["Author", "Title"]) for n in ("a", "b", "c")]
        results = OntologyAligner().align_all(ontologies, pairs=[("a", "b"), ("b", "c")])
        assert set(results) == {("a", "b"), ("b", "c")}

    def test_align_all_unknown_pair_rejected(self):
        ontologies = [Ontology("a", concepts=["X"]), Ontology("b", concepts=["X"])]
        with pytest.raises(AlignmentError):
            OntologyAligner().align_all(ontologies, pairs=[("a", "zz")])


class TestEONOntologies:
    def test_six_ontologies_of_about_thirty_concepts(self):
        ontologies = eon_ontologies()
        assert len(ontologies) == 6
        for ontology in ontologies:
            assert 25 <= len(ontology) <= 32

    def test_ground_truth_covers_every_concept(self):
        truth = eon_ground_truth()
        for ontology in eon_ontologies():
            for concept in ontology.concept_names:
                assert (ontology.name, concept) in truth
                assert truth[(ontology.name, concept)] in CANONICAL_CONCEPTS

    def test_french_ontology_uses_french_labels(self):
        by_name = {o.name: o for o in eon_ontologies()}
        assert by_name["fr221"].has_concept("Auteur")
        assert by_name["fr221"].language == "fr"


class TestEONScenario:
    def test_scale_matches_paper_order_of_magnitude(self, eon):
        """Paper: 396 generated mappings, 86 erroneous.  The synthetic set
        lands in the same ballpark."""
        assert 30 == len(eon.alignments)
        assert 300 <= eon.correspondence_count <= 500
        assert 40 <= eon.erroneous_count <= 120
        assert 0.08 <= eon.error_rate <= 0.30

    def test_network_has_six_peers_and_thirty_mappings(self, eon):
        assert len(eon.network) == 6
        assert len(eon.network.mappings) == 30

    def test_ground_truth_consistent_with_mappings(self, eon):
        for mapping in eon.network.mappings:
            for correspondence in mapping.correspondences:
                key = (mapping.name, correspondence.source_attribute)
                assert key in eon.ground_truth
                assert eon.ground_truth[key] == (correspondence.is_correct is not False)

    def test_known_faux_ami_error_present(self, eon):
        """The French Editeur (= publisher) gets matched to the English
        Editor — the classic confusable the detector should later flag."""
        mapping = eon.network.mapping("ref101->fr221")
        assert mapping.apply("Editor") == "Editeur"
        assert eon.is_correct("ref101->fr221", "Editor") is False

    def test_is_correct_for_unknown_pair_is_none(self, eon):
        assert eon.is_correct("ref101->fr221", "NotAConcept") is None

    def test_network_contains_cycles_for_feedback(self, eon):
        from repro.pdms.probing import find_cycles_through

        cycles = find_cycles_through(eon.network, "ref101", ttl=3)
        assert len(cycles) >= 5
