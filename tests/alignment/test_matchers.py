"""Unit tests for the string-similarity matchers."""

import pytest

from repro.alignment.matchers import (
    CompositeMatcher,
    edit_distance_matcher,
    exact_matcher,
    levenshtein_distance,
    ngram_matcher,
    normalized_label,
    synonym_matcher,
    token_matcher,
)
from repro.alignment.ontology import Concept


class TestNormalizedLabel:
    def test_camel_case_flattened(self):
        assert normalized_label("PublisherAddress") == "publisher address"

    def test_snake_case_flattened(self):
        assert normalized_label("publisher_address") == "publisher address"


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("author", "auteur", 2),
        ],
    )
    def test_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_symmetry(self):
        assert levenshtein_distance("editor", "editeur") == levenshtein_distance(
            "editeur", "editor"
        )


class TestExactMatcher:
    def test_matches_same_normalised_label(self):
        assert exact_matcher(Concept("Author"), Concept("author")) == 1.0
        assert exact_matcher(Concept("hasAuthor"), Concept("has_author")) == 1.0

    def test_no_match(self):
        assert exact_matcher(Concept("Author"), Concept("Title")) == 0.0

    def test_matches_through_synonyms(self):
        creator = Concept("Creator", synonyms=("Author",))
        assert exact_matcher(creator, Concept("Author")) == 1.0


class TestEditDistanceMatcher:
    def test_identical_names_score_one(self):
        assert edit_distance_matcher(Concept("Author"), Concept("Author")) == 1.0

    def test_similar_names_score_high(self):
        score = edit_distance_matcher(Concept("Auteur"), Concept("Author"))
        assert 0.6 < score < 1.0

    def test_dissimilar_names_score_low(self):
        score = edit_distance_matcher(Concept("Annee"), Concept("Publisher"))
        assert score < 0.4


class TestNgramAndTokenMatchers:
    def test_ngram_shared_substring(self):
        score = ngram_matcher(Concept("PublicationYear"), Concept("YearOfPublication"))
        assert score > 0.3

    def test_token_matcher_shares_tokens(self):
        # {has, title} vs {title, of, work}: Jaccard = 1/4.
        assert token_matcher(Concept("hasTitle"), Concept("TitleOfWork")) == pytest.approx(0.25)
        assert token_matcher(Concept("DocumentTitle"), Concept("title")) == pytest.approx(0.5)

    def test_token_matcher_disjoint(self):
        assert token_matcher(Concept("Author"), Concept("Publisher")) == 0.0


class TestSynonymMatcher:
    def test_dictionary_lookup_is_symmetric(self):
        matcher = synonym_matcher({"Auteur": ["Author"]})
        assert matcher(Concept("Auteur"), Concept("Author")) == 1.0
        assert matcher(Concept("Author"), Concept("Auteur")) == 1.0

    def test_unlisted_pair_scores_zero(self):
        matcher = synonym_matcher({"Auteur": ["Author"]})
        assert matcher(Concept("Titre"), Concept("Title")) == 0.0


class TestCompositeMatcher:
    def test_score_in_unit_interval(self):
        matcher = CompositeMatcher()
        assert 0.0 <= matcher.score(Concept("Author"), Concept("Editor")) <= 1.0

    def test_exact_match_dominates(self):
        matcher = CompositeMatcher()
        assert matcher.score(Concept("Author"), Concept("author")) == 1.0

    def test_add_custom_matcher(self):
        matcher = CompositeMatcher(matchers=[])
        assert matcher.score(Concept("a"), Concept("b")) == 0.0
        matcher.add(lambda x, y: 0.42, weight=1.0)
        assert matcher.score(Concept("a"), Concept("b")) == pytest.approx(0.42)

    def test_callable_interface(self):
        matcher = CompositeMatcher()
        assert matcher(Concept("Author"), Concept("Author")) == 1.0
