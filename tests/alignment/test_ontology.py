"""Unit tests for the ontology model."""

import pytest

from repro.alignment.ontology import Concept, Ontology
from repro.exceptions import AlignmentError
from repro.schema.schema import DataModel


class TestConcept:
    def test_label_defaults_to_name(self):
        concept = Concept("Author")
        assert concept.label == "Author"

    def test_all_labels_include_synonyms(self):
        concept = Concept("Author", label="author", synonyms=("Creator", "Writer"))
        assert set(concept.all_labels) == {"Author", "author", "Creator", "Writer"}

    def test_empty_name_rejected(self):
        with pytest.raises(AlignmentError):
            Concept("")


class TestOntology:
    def test_concepts_from_strings(self):
        ontology = Ontology("bib", concepts=["Author", "Title"])
        assert ontology.concept_names == ("Author", "Title")
        assert len(ontology) == 2

    def test_duplicate_concepts_rejected(self):
        with pytest.raises(AlignmentError):
            Ontology("bib", concepts=["Author", "Author"])

    def test_unknown_concept_raises(self):
        ontology = Ontology("bib", concepts=["Author"])
        with pytest.raises(AlignmentError):
            ontology.concept("Nope")

    def test_has_concept_and_iteration(self):
        ontology = Ontology("bib", concepts=["Author", "Title"])
        assert ontology.has_concept("Author")
        assert not ontology.has_concept("Nope")
        assert [c.name for c in ontology] == ["Author", "Title"]

    def test_to_schema_produces_rdf_schema(self):
        ontology = Ontology("bib", concepts=["Author", "Title"])
        schema = ontology.to_schema()
        assert schema.name == "bib"
        assert schema.data_model is DataModel.RDF
        assert schema.attribute_names == ("Author", "Title")

    def test_empty_name_rejected(self):
        with pytest.raises(AlignmentError):
            Ontology("")
