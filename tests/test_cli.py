"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            ["intro"],
            ["convergence", "--priors", "0.8"],
            ["relative-error", "--max-extra-peers", "2"],
            ["cycle-length", "--max-length", "6"],
            ["fault-tolerance", "--repetitions", "2"],
            ["real-world", "--thetas", "0.5"],
            ["baseline"],
            ["schedules"],
            ["throughput", "--sizes", "8", "--repeats", "1"],
            ["throughput", "--mode", "embedded", "--sizes", "8", "--rounds", "5"],
            ["amortization", "--peers", "8"],
            ["scenario", "--peers", "6"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_intro_command(self, capsys):
        assert main(["intro"]) == 0
        output = capsys.readouterr().out
        assert "P(p2->p3 correct)" in output
        assert "p2->p4" in output

    def test_cycle_length_command(self, capsys):
        assert main(["cycle-length", "--max-length", "6", "--deltas", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "Figure 10" in output
        assert "Δ=0.1" in output

    def test_relative_error_command(self, capsys):
        assert main(["relative-error", "--max-extra-peers", "1"]) == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_baseline_command(self, capsys):
        assert main(["baseline"]) == 0
        output = capsys.readouterr().out
        assert "probabilistic" in output
        assert "chatty-web" in output

    def test_throughput_command(self, capsys):
        assert main(["throughput", "--sizes", "8", "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "vectorized msg/s" in output
        assert "speedup" in output

    def test_embedded_throughput_command(self, capsys):
        assert main(
            [
                "throughput", "--mode", "embedded",
                "--sizes", "8", "--repeats", "1", "--rounds", "5",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "array rounds/s" in output
        assert "max |Δposterior|" in output

    def test_amortization_command(self, capsys):
        assert main(["amortization", "--peers", "8", "--attributes", "6"]) == 0
        output = capsys.readouterr().out
        assert "cached + sequential" in output
        assert "cached + batched" in output
        assert "plan compiles" in output

    def test_scenario_command(self, capsys):
        assert main(["scenario", "--peers", "6", "--attributes", "6", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "precision" in output

    def test_convergence_command(self, capsys):
        assert main(["convergence"]) == 0
        assert "Figure 7" in capsys.readouterr().out
