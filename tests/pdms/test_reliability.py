"""Unit tests for the chaos / resilience layer (:mod:`repro.reliability`).

The contract under test: a seeded :class:`FaultPlan` is a picklable,
deterministic schedule; the :class:`ResilientDiscoveryExecutor` survives
crashes, hangs and corrupted payloads with merged structures (and the
posteriors downstream of them) *bit-identical* to a fault-free serial run,
while its :class:`ReliabilityStatistics` count exactly the injected faults;
exhausted retry budgets quarantine only the failed shards; the strict base
executor fails fast with descriptive errors instead; and every env knob
(``REPRO_PROBE_WORKERS`` / ``REPRO_PROBE_EXECUTOR`` / ``REPRO_EXECUTOR`` /
``REPRO_SHARD_TIMEOUT`` / ``REPRO_FAULT_PLAN``) rejects garbage with an
error naming the variable.
"""

import pickle

import pytest

from repro.core.analysis import NetworkStructureCache, NeighborhoodStructureCache
from repro.core.quality import MappingQualityAssessor
from repro.exceptions import (
    DiscoveryTimeoutError,
    FactorGraphError,
    InjectedFaultError,
    PDMSError,
)
from repro.factorgraph.plan import NumpyExecutor, ThreadedExecutor, get_executor
from repro.generators.scenarios import generate_scenario
from repro.generators.topologies import scale_free_network
from repro.pdms.discovery import (
    ProcessPoolDiscoveryExecutor,
    SerialDiscoveryExecutor,
    plan_full_probe,
    resolve_discovery_executor,
    resolve_probe_workers,
    resolve_shard_timeout,
)
from repro.reliability import (
    FAULT_CORRUPT,
    FAULT_CRASH,
    FAULT_DELAY,
    FAULT_HANG,
    FaultInjector,
    FaultPlan,
    ResilientDiscoveryExecutor,
    fault_plan_or_env,
)

TTL = 3

WORKERS = 2

#: 2 workers × 4 shards per worker — every plan below schedules within it.
SHARDS = WORKERS * ResilientDiscoveryExecutor.SHARDS_PER_WORKER

#: Short deadline so each injected hang costs well under a second.
SHARD_TIMEOUT = 0.4

#: Hangs sleep comfortably past the deadline so the expiry always fires.
HANG_SECONDS = 2.0


@pytest.fixture(scope="module")
def network():
    return scale_free_network(16, seed=7)


@pytest.fixture(scope="module")
def full_plan(network):
    return plan_full_probe(network, ttl=TTL, include_parallel_paths=True)


@pytest.fixture(scope="module")
def serial_merged(full_plan):
    return SerialDiscoveryExecutor().run(full_plan).merged()


@pytest.fixture(scope="module")
def serial_network_structures(network):
    cache = NetworkStructureCache(network, ttl=TTL, probe_executor="serial")
    return cache.structures()


@pytest.fixture(scope="module")
def serial_neighborhoods(network):
    cache = NeighborhoodStructureCache(network, ttl=TTL, probe_executor="serial")
    cache.warm(network.peer_names)
    return {origin: cache.structures_for(origin) for origin in network.peer_names}


def seeded_plan(seed, kind):
    return FaultPlan.seeded(
        seed=seed,
        rate=0.4,
        kinds=(kind,),
        shards=SHARDS,
        hang_seconds=HANG_SECONDS,
    )


class TestFaultPlan:
    def test_seeded_is_deterministic_and_attempt_zero_only(self):
        first = seeded_plan(11, FAULT_CRASH)
        second = seeded_plan(11, FAULT_CRASH)
        assert first.faults == second.faults
        assert first.faults, "seed 11 at rate 0.4 should schedule faults"
        assert all(attempt == 0 for _, attempt in first.faults)

    def test_spec_round_trips_through_parse(self):
        plan = FaultPlan.seeded(
            seed=5, rate=0.4, kinds=(FAULT_CRASH, FAULT_CORRUPT), shards=SHARDS
        )
        assert FaultPlan.parse(plan.spec()) == plan
        # Hand-built plans render as explicit at= entries and round-trip too.
        explicit = FaultPlan(faults={(0, 0): FAULT_CRASH, (3, 1): FAULT_HANG})
        reparsed = FaultPlan.parse(explicit.spec())
        assert reparsed.faults == explicit.faults

    def test_parse_explicit_entries(self):
        plan = FaultPlan.parse("at=0.0.crash,3.1.hang:hang=0.5")
        assert plan.fault_for(0, 0) == FAULT_CRASH
        assert plan.fault_for(3, 1) == FAULT_HANG
        assert plan.fault_for(1, 0) is None
        assert plan.hang_seconds == 0.5

    def test_scheduled_respects_shard_count(self):
        plan = FaultPlan.parse("at=0.0.crash,12.0.crash")
        assert plan.scheduled(8) == {(0, 0): FAULT_CRASH}
        assert plan.faulted_shard_fraction(8) == 1 / 8

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="non-empty string"):
            FaultPlan.parse("   ")
        with pytest.raises(ValueError, match="malformed fault plan segment"):
            FaultPlan.parse("rate")
        with pytest.raises(ValueError, match="unknown fault plan key"):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValueError, match="must be a number"):
            FaultPlan.parse("rate=banana")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("rate=0.5:kinds=meteor")
        with pytest.raises(ValueError, match="malformed at= entry"):
            FaultPlan.parse("at=0.crash")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("at=0.0.meteor")

    def test_plan_pickles(self):
        plan = seeded_plan(11, FAULT_HANG)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_fault_plan_or_env_passthrough_and_rejection(self):
        plan = seeded_plan(1, FAULT_CRASH)
        assert fault_plan_or_env(plan) is plan
        assert fault_plan_or_env("at=0.0.crash").fault_for(0, 0) == FAULT_CRASH
        with pytest.raises(ValueError, match="FaultPlan, a spec string or None"):
            fault_plan_or_env(42)


class TestFaultInjector:
    def test_crash_raises_and_clean_shards_pass(self):
        injector = FaultInjector(FaultPlan.parse("at=0.0.crash:delay=0"))
        with pytest.raises(InjectedFaultError, match="shard 0, attempt 0"):
            injector.fire(0, 0)
        assert injector.fire(0, 1) is None
        assert injector.fire(1, 0) is None

    def test_corrupt_is_returned_not_raised_in_processes(self):
        injector = FaultInjector(FaultPlan.parse("at=2.0.corrupt"))
        assert injector.fire(2, 0) == FAULT_CORRUPT

    def test_threads_degrade_every_wedging_kind_to_a_crash(self):
        injector = FaultInjector(
            FaultPlan.parse("at=0.0.crash,1.0.hang,2.0.corrupt")
        )
        for bucket in (0, 1, 2):
            with pytest.raises(InjectedFaultError, match=f"bucket {bucket}"):
                injector.fire_in_thread(bucket, 0)


class TestChaosParityMatrix:
    """3 seeds × every fault kind × both structure caches: structures and
    downstream posteriors bit-identical to the fault-free serial run, with
    the statistics counting exactly the injected faults."""

    @pytest.mark.parametrize("seed", (1, 2, 3))
    @pytest.mark.parametrize("kind", (FAULT_CRASH, FAULT_HANG, FAULT_CORRUPT))
    def test_both_caches_bit_identical_under_chaos(
        self, network, serial_network_structures, serial_neighborhoods, seed, kind
    ):
        plan = seeded_plan(seed, kind)
        scheduled = plan.scheduled(SHARDS)
        assert scheduled, f"seed {seed} scheduled no {kind} faults"
        expected = len(scheduled)

        def check_stats(stats):
            assert stats.faults_injected == expected
            assert stats.faults_observed == expected
            assert stats.retries == expected
            assert stats.worker_errors == (expected if kind == FAULT_CRASH else 0)
            assert stats.timeouts == (expected if kind == FAULT_HANG else 0)
            assert stats.corrupted_payloads == (
                expected if kind == FAULT_CORRUPT else 0
            )
            assert stats.quarantined_shards == 0
            assert stats.serial_fallbacks == 0

        chaos_network_cache = NetworkStructureCache(
            network,
            ttl=TTL,
            probe_executor="process",
            probe_workers=WORKERS,
            shard_timeout=SHARD_TIMEOUT,
            fault_plan=plan,
        )
        assert isinstance(
            chaos_network_cache.probe_executor, ResilientDiscoveryExecutor
        )
        assert chaos_network_cache.structures() == serial_network_structures
        check_stats(chaos_network_cache.statistics.reliability)

        chaos_neighborhood_cache = NeighborhoodStructureCache(
            network,
            ttl=TTL,
            probe_executor="process",
            probe_workers=WORKERS,
            shard_timeout=SHARD_TIMEOUT,
            fault_plan=plan,
        )
        chaos_neighborhood_cache.warm(network.peer_names)
        for origin in network.peer_names:
            assert (
                chaos_neighborhood_cache.structures_for(origin)
                == serial_neighborhoods[origin]
            ), f"neighborhood structures diverged for origin {origin!r}"
        check_stats(chaos_neighborhood_cache.statistics.reliability)

    def test_delay_faults_cost_no_retries(self, full_plan, serial_merged):
        plan = FaultPlan.parse("at=0.0.delay,3.0.delay:delay=0.01")
        executor = ResilientDiscoveryExecutor(
            workers=WORKERS, shard_timeout=SHARD_TIMEOUT, fault_plan=plan
        )
        assert executor.run(full_plan).merged() == serial_merged
        stats = executor.last_run_statistics
        assert stats.injected_delays == 2
        assert stats.faults_injected == 2
        assert stats.retries == 0
        # A delay is not a failure: nothing is observed as broken.
        assert stats.faults_observed == 0


class TestRetryBudget:
    def test_exhausted_budget_falls_back_serially_for_failed_shards_only(
        self, full_plan, serial_merged
    ):
        # Shard 0 crashes on every attempt the default budget allows (3);
        # shard 5 crashes once and recovers on its first retry.
        plan = FaultPlan.parse("at=0.0.crash,0.1.crash,0.2.crash,5.0.crash")
        executor = ResilientDiscoveryExecutor(
            workers=WORKERS, shard_timeout=SHARD_TIMEOUT, fault_plan=plan
        )
        assert executor.run(full_plan).merged() == serial_merged
        stats = executor.last_run_statistics
        assert stats.injected_crashes == 4
        assert stats.worker_errors == 4
        # Shard 0: attempts 0/1 are retries, attempt 2 exhausts the budget.
        assert stats.retries == 3
        assert stats.quarantined_shards == 1
        assert stats.serial_fallbacks == 1, (
            "only the quarantined shard may be re-run serially"
        )

    def test_cumulative_statistics_accumulate_across_runs(self, full_plan):
        plan = FaultPlan.parse("at=1.0.crash")
        executor = ResilientDiscoveryExecutor(
            workers=WORKERS, shard_timeout=SHARD_TIMEOUT, fault_plan=plan
        )
        executor.run(full_plan)
        executor.run(full_plan)
        assert executor.last_run_statistics.injected_crashes == 1
        assert executor.statistics.injected_crashes == 2


class TestStrictBaseExecutor:
    def test_hang_raises_discovery_timeout(self, full_plan):
        executor = ProcessPoolDiscoveryExecutor(
            workers=WORKERS,
            shard_timeout=0.3,
            fault_plan=FaultPlan.parse("at=0.0.hang:hang=5"),
        )
        with pytest.raises(DiscoveryTimeoutError, match="probe shard 0"):
            executor.run(full_plan)

    def test_corrupt_payload_raises_before_merge(self, full_plan):
        executor = ProcessPoolDiscoveryExecutor(
            workers=WORKERS,
            fault_plan=FaultPlan.parse("at=1.0.corrupt"),
        )
        with pytest.raises(PDMSError, match="corrupted wire payload"):
            executor.run(full_plan)


class TestThreadedSweepFallback:
    def test_bucket_faults_fall_back_to_bit_identical_numpy(self):
        scenario = generate_scenario(peer_count=12, attribute_count=4, seed=0)
        attribute = sorted(scenario.ground_truth)[0][1]
        reference = (
            MappingQualityAssessor(
                scenario.network, ttl=TTL, executor=NumpyExecutor(),
                probe_executor="serial",
            )
            .assess_attribute(attribute)
            .posteriors
        )
        chaos_executor = ThreadedExecutor(
            fault_plan=FaultPlan.seeded(
                seed=2, rate=0.6, kinds=(FAULT_CRASH,), shards=64
            )
        )
        chaos = (
            MappingQualityAssessor(
                scenario.network, ttl=TTL, executor=chaos_executor,
                probe_executor="serial",
            )
            .assess_attribute(attribute)
            .posteriors
        )
        assert chaos == reference
        stats = chaos_executor.statistics
        assert stats.bucket_fallbacks > 0, "no sweep bucket ever faulted"
        assert stats.worker_errors == stats.bucket_fallbacks
        assert stats.injected_crashes == stats.bucket_fallbacks


class TestEnvKnobs:
    def test_probe_workers_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_PROBE_WORKERS"):
            resolve_probe_workers()

    def test_probe_workers_env_nonpositive_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_WORKERS", "0")
        assert resolve_probe_workers() >= 1

    def test_probe_executor_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_EXECUTOR", "bogus")
        with pytest.raises(ValueError, match="REPRO_PROBE_EXECUTOR"):
            resolve_discovery_executor()

    def test_shard_timeout_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SHARD_TIMEOUT"):
            resolve_shard_timeout()
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "-2")
        with pytest.raises(ValueError, match="REPRO_SHARD_TIMEOUT"):
            resolve_shard_timeout()

    def test_fault_plan_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "rate=banana")
        with pytest.raises(ValueError, match="REPRO_FAULT_PLAN"):
            fault_plan_or_env(None)

    def test_sweep_executor_env_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        with pytest.raises(FactorGraphError, match="REPRO_EXECUTOR"):
            get_executor()

    def test_fault_plan_env_upgrades_process_to_resilient(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "at=0.0.crash")
        executor = resolve_discovery_executor("process", workers=2)
        assert isinstance(executor, ResilientDiscoveryExecutor)
        assert executor.fault_plan is not None

    def test_explicit_fault_plan_upgrades_process_to_resilient(self):
        executor = resolve_discovery_executor(
            "process", workers=2, fault_plan="at=0.0.crash"
        )
        assert isinstance(executor, ResilientDiscoveryExecutor)

    def test_resilient_spec_resolves_without_a_plan(self):
        executor = resolve_discovery_executor("resilient", workers=2)
        assert isinstance(executor, ResilientDiscoveryExecutor)
        assert executor.fault_plan is None

    def test_fault_plan_env_arms_fresh_threaded_executors(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        shared = get_executor("threaded")
        assert shared.fault_plan is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "at=0.0.crash")
        armed = get_executor("threaded")
        assert isinstance(armed, ThreadedExecutor)
        assert armed.fault_plan is not None
        assert armed is not shared
        assert armed is not get_executor("threaded"), (
            "armed chaos executors must never be cached"
        )
