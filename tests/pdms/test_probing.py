"""Unit tests for cycle and parallel-path discovery."""

import pytest

from repro.exceptions import PDMSError
from repro.generators.paper import intro_example_network
from repro.generators.topologies import chain_network, cycle_network
from repro.pdms.probing import (
    find_all_cycles,
    find_all_parallel_paths,
    find_cycles_through,
    find_parallel_paths_from,
    probe_neighborhood,
)


@pytest.fixture(scope="module")
def intro_network():
    return intro_example_network(with_records=False)


class TestCycleDiscovery:
    def test_simple_cycle_found(self):
        network = cycle_network(4)
        cycles = find_cycles_through(network, "p1", ttl=5)
        assert len(cycles) == 1
        assert cycles[0].length == 4
        assert cycles[0].origin == "p1"

    def test_ttl_limits_cycle_length(self):
        network = cycle_network(6)
        assert find_cycles_through(network, "p1", ttl=5) == ()
        assert len(find_cycles_through(network, "p1", ttl=6)) == 1

    def test_chain_has_no_cycles(self):
        network = chain_network(5)
        assert find_cycles_through(network, "p1", ttl=10) == ()

    def test_intro_network_cycles_through_p2(self, intro_network):
        cycles = find_cycles_through(intro_network, "p2", ttl=4)
        keys = {cycle.mapping_names for cycle in cycles}
        # The two cycles of §4.5 (oriented from p2) plus the 2-cycle via p1.
        assert ("p2->p3", "p3->p4", "p4->p1", "p1->p2") in keys
        assert ("p2->p4", "p4->p1", "p1->p2") in keys
        assert ("p2->p1", "p1->p2") in keys

    def test_cycles_deduplicated_across_origins(self, intro_network):
        cycles = find_all_cycles(intro_network, ttl=4)
        keys = [cycle.canonical_key() for cycle in cycles]
        assert len(keys) == len(set(keys))

    def test_canonical_key_rotation_invariant(self, intro_network):
        from_p2 = {
            c.canonical_key()
            for c in find_cycles_through(intro_network, "p2", ttl=4)
            if c.length == 4
        }
        from_p1 = {
            c.canonical_key()
            for c in find_cycles_through(intro_network, "p1", ttl=4)
            if c.length == 4
        }
        assert from_p2 == from_p1


class TestParallelPathDiscovery:
    def test_intro_network_parallel_paths_from_p2(self, intro_network):
        pairs = find_parallel_paths_from(intro_network, "p2", ttl=3)
        keys = {pair.canonical_key() for pair in pairs}
        # m24 parallel to m23 -> m34 (the f3 feedback of §4.5).
        assert ((("p2->p3", "p3->p4")), ("p2->p4",)) in keys or (
            ("p2->p4",),
            ("p2->p3", "p3->p4"),
        ) in keys

    def test_paths_are_edge_disjoint(self, intro_network):
        for pair in find_all_parallel_paths(intro_network, ttl=3):
            first_names = {m.name for m in pair.first}
            second_names = {m.name for m in pair.second}
            assert not (first_names & second_names)

    def test_chain_has_no_parallel_paths(self):
        network = chain_network(5)
        assert find_parallel_paths_from(network, "p1", ttl=5) == ()


class TestProbe:
    def test_probe_neighborhood_bundles_both(self, intro_network):
        probe = probe_neighborhood(intro_network, "p2", ttl=4)
        assert probe.origin == "p2"
        assert probe.cycles
        assert probe.parallel_paths
        assert probe.structure_count == len(probe.cycles) + len(probe.parallel_paths)

    def test_probe_unknown_peer_raises(self, intro_network):
        with pytest.raises(PDMSError):
            probe_neighborhood(intro_network, "zz")


class TestTtlValidation:
    """Non-positive TTLs are caller bugs, rejected consistently everywhere."""

    @pytest.mark.parametrize("ttl", [0, -1, -6])
    def test_probing_entry_points_reject_non_positive_ttl(self, ttl, intro_network):
        with pytest.raises(ValueError, match="positive hop count"):
            find_cycles_through(intro_network, "p1", ttl=ttl)
        with pytest.raises(ValueError, match="positive hop count"):
            find_parallel_paths_from(intro_network, "p1", ttl=ttl)
        with pytest.raises(ValueError, match="positive hop count"):
            probe_neighborhood(intro_network, "p1", ttl=ttl)
        with pytest.raises(ValueError, match="positive hop count"):
            find_all_cycles(intro_network, ttl=ttl)
        with pytest.raises(ValueError, match="positive hop count"):
            find_all_parallel_paths(intro_network, ttl=ttl)

    def test_ttl_one_is_a_valid_probe_without_cycles(self, intro_network):
        # One hop cannot close a cycle, but it is a well-defined probe —
        # not an error, and no longer a silent historical special case.
        assert find_cycles_through(intro_network, "p1", ttl=1) == ()
        assert probe_neighborhood(intro_network, "p1", ttl=1).cycles == ()

    def test_structure_caches_reject_non_positive_ttl(self, intro_network):
        from repro.core.analysis import (
            NeighborhoodStructureCache,
            NetworkStructureCache,
        )

        with pytest.raises(ValueError, match="positive hop count"):
            NetworkStructureCache(intro_network, ttl=0)
        with pytest.raises(ValueError, match="positive hop count"):
            NeighborhoodStructureCache(intro_network, ttl=-2)
        from repro.core.quality import MappingQualityAssessor

        with pytest.raises(ValueError, match="positive hop count"):
            MappingQualityAssessor(intro_network, ttl=0)

    def test_default_ttl_is_shared(self):
        import inspect

        from repro.constants import DEFAULT_TTL
        from repro.core.analysis import (
            NeighborhoodStructureCache,
            NetworkStructureCache,
            analyze_network,
        )
        from repro.core.quality import MappingQualityAssessor

        assert DEFAULT_TTL == 6
        for callable_ in (
            find_cycles_through,
            find_parallel_paths_from,
            probe_neighborhood,
            find_all_cycles,
            find_all_parallel_paths,
            analyze_network,
            MappingQualityAssessor,
            NetworkStructureCache,
            NeighborhoodStructureCache,
        ):
            signature = inspect.signature(callable_)
            assert signature.parameters["ttl"].default == DEFAULT_TTL, callable_
