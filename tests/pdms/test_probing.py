"""Unit tests for cycle and parallel-path discovery."""

import pytest

from repro.exceptions import PDMSError
from repro.generators.paper import intro_example_network
from repro.generators.topologies import chain_network, cycle_network
from repro.pdms.probing import (
    find_all_cycles,
    find_all_parallel_paths,
    find_cycles_through,
    find_parallel_paths_from,
    probe_neighborhood,
)


@pytest.fixture(scope="module")
def intro_network():
    return intro_example_network(with_records=False)


class TestCycleDiscovery:
    def test_simple_cycle_found(self):
        network = cycle_network(4)
        cycles = find_cycles_through(network, "p1", ttl=5)
        assert len(cycles) == 1
        assert cycles[0].length == 4
        assert cycles[0].origin == "p1"

    def test_ttl_limits_cycle_length(self):
        network = cycle_network(6)
        assert find_cycles_through(network, "p1", ttl=5) == ()
        assert len(find_cycles_through(network, "p1", ttl=6)) == 1

    def test_chain_has_no_cycles(self):
        network = chain_network(5)
        assert find_cycles_through(network, "p1", ttl=10) == ()

    def test_intro_network_cycles_through_p2(self, intro_network):
        cycles = find_cycles_through(intro_network, "p2", ttl=4)
        keys = {cycle.mapping_names for cycle in cycles}
        # The two cycles of §4.5 (oriented from p2) plus the 2-cycle via p1.
        assert ("p2->p3", "p3->p4", "p4->p1", "p1->p2") in keys
        assert ("p2->p4", "p4->p1", "p1->p2") in keys
        assert ("p2->p1", "p1->p2") in keys

    def test_cycles_deduplicated_across_origins(self, intro_network):
        cycles = find_all_cycles(intro_network, ttl=4)
        keys = [cycle.canonical_key() for cycle in cycles]
        assert len(keys) == len(set(keys))

    def test_canonical_key_rotation_invariant(self, intro_network):
        from_p2 = {
            c.canonical_key()
            for c in find_cycles_through(intro_network, "p2", ttl=4)
            if c.length == 4
        }
        from_p1 = {
            c.canonical_key()
            for c in find_cycles_through(intro_network, "p1", ttl=4)
            if c.length == 4
        }
        assert from_p2 == from_p1


class TestParallelPathDiscovery:
    def test_intro_network_parallel_paths_from_p2(self, intro_network):
        pairs = find_parallel_paths_from(intro_network, "p2", ttl=3)
        keys = {pair.canonical_key() for pair in pairs}
        # m24 parallel to m23 -> m34 (the f3 feedback of §4.5).
        assert ((("p2->p3", "p3->p4")), ("p2->p4",)) in keys or (
            ("p2->p4",),
            ("p2->p3", "p3->p4"),
        ) in keys

    def test_paths_are_edge_disjoint(self, intro_network):
        for pair in find_all_parallel_paths(intro_network, ttl=3):
            first_names = {m.name for m in pair.first}
            second_names = {m.name for m in pair.second}
            assert not (first_names & second_names)

    def test_chain_has_no_parallel_paths(self):
        network = chain_network(5)
        assert find_parallel_paths_from(network, "p1", ttl=5) == ()


class TestProbe:
    def test_probe_neighborhood_bundles_both(self, intro_network):
        probe = probe_neighborhood(intro_network, "p2", ttl=4)
        assert probe.origin == "p2"
        assert probe.cycles
        assert probe.parallel_paths
        assert probe.structure_count == len(probe.cycles) + len(probe.parallel_paths)

    def test_probe_unknown_peer_raises(self, intro_network):
        with pytest.raises(PDMSError):
            probe_neighborhood(intro_network, "zz")
