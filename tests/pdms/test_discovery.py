"""Unit tests for the shared probe-plan discovery core.

The :mod:`repro.pdms.discovery` frontier is the single enumeration engine
behind both structure caches: these tests pin its contract — snapshots and
plans pickle (the process executor ships them to workers), the serial
executor is *order*-identical to the historical recursive walkers, the
origin-sharded process pool merges to the same lists, and the executor /
worker resolution helpers reject nonsense loudly.
"""

import pickle

import pytest

from repro.exceptions import PDMSError, UnknownPeerError
from repro.generators.paper import intro_example_network
from repro.generators.topologies import scale_free_network
from repro.pdms.discovery import (
    CYCLES_THROUGH,
    PATHS_FROM,
    ProbePlan,
    ProbeWorkUnit,
    ProcessPoolDiscoveryExecutor,
    SerialDiscoveryExecutor,
    TopologySnapshot,
    plan_full_probe,
    plan_mapping_delta,
    plan_neighborhood_probe,
    resolve_discovery_executor,
    resolve_probe_workers,
)
from repro.pdms.probing import (
    find_cycles_through,
    find_parallel_paths_from,
    find_parallel_paths_through,
)


@pytest.fixture(scope="module")
def intro_network():
    return intro_example_network(with_records=False)


@pytest.fixture(scope="module")
def sparse_network():
    return scale_free_network(24, seed=7)


def _names(structures):
    return [s.mapping_names for s in structures]


def _walker_reference(network, ttl):
    """The pre-frontier sequential enumeration: per-peer walkers, deduped
    by canonical key in peer order."""
    cycles, paths = [], []
    seen_cycles, seen_paths = set(), set()
    for name in network.peer_names:
        for cycle in find_cycles_through(network, name, ttl=ttl):
            key = cycle.canonical_key()
            if key not in seen_cycles:
                seen_cycles.add(key)
                cycles.append(cycle)
    for name in network.peer_names:
        for pair in find_parallel_paths_from(network, name, ttl=ttl):
            key = pair.canonical_key()
            if key not in seen_paths:
                seen_paths.add(key)
                paths.append(pair)
    return cycles, paths


class TestTopologySnapshot:
    def test_snapshot_pickle_round_trip(self, sparse_network):
        snapshot = sparse_network.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.peer_names == snapshot.peer_names
        assert [m.name for m in clone.mappings] == [
            m.name for m in snapshot.mappings
        ]
        # The clone is a fully functional probe substrate.
        plan = plan_full_probe(clone, ttl=4)
        cycles, paths = SerialDiscoveryExecutor().run(plan).merged()
        reference = plan_full_probe(snapshot, ttl=4)
        ref_cycles, ref_paths = SerialDiscoveryExecutor().run(reference).merged()
        assert _names(cycles) == _names(ref_cycles)
        assert _names(paths) == _names(ref_paths)

    def test_snapshot_of_is_idempotent(self, intro_network):
        snapshot = TopologySnapshot.of(intro_network)
        assert TopologySnapshot.of(snapshot) is snapshot

    def test_plan_pickles(self, intro_network):
        plan = plan_full_probe(intro_network, ttl=4)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.work_units == plan.work_units
        assert clone.ttl == plan.ttl


class TestSerialExecutor:
    @pytest.mark.parametrize("ttl", [3, 4, 5])
    def test_order_identical_to_walkers(self, sparse_network, ttl):
        plan = plan_full_probe(sparse_network, ttl=ttl)
        cycles, paths = SerialDiscoveryExecutor().run(plan).merged()
        ref_cycles, ref_paths = _walker_reference(sparse_network, ttl)
        assert _names(cycles) == _names(ref_cycles)
        assert _names(paths) == _names(ref_paths)

    def test_run_is_not_sharded(self, intro_network):
        run = SerialDiscoveryExecutor().run(plan_full_probe(intro_network, ttl=4))
        assert run.sharded is False
        assert run.workers == 1


class TestProcessPoolExecutor:
    @pytest.mark.parametrize("ttl", [4, 5])
    def test_sharded_merge_matches_serial(self, sparse_network, ttl):
        plan = plan_full_probe(sparse_network, ttl=ttl)
        serial = SerialDiscoveryExecutor().run(plan)
        pooled = ProcessPoolDiscoveryExecutor(workers=2, min_units=1).run(plan)
        assert pooled.sharded is True
        assert pooled.workers == 2
        assert _names(pooled.merged()[0]) == _names(serial.merged()[0])
        assert _names(pooled.merged()[1]) == _names(serial.merged()[1])

    def test_merged_structures_reference_parent_mappings(self, intro_network):
        # Workers ship structures back as mapping-name tuples; the parent
        # rehydrates against its own snapshot, so downstream evidence code
        # sees the very same Mapping instances as a serial run would.
        plan = plan_full_probe(intro_network, ttl=4)
        cycles, _ = ProcessPoolDiscoveryExecutor(workers=2, min_units=1).run(
            plan
        ).merged()
        by_name = {m.name: m for m in plan.snapshot.mappings}
        for cycle in cycles:
            for mapping in cycle.mappings:
                assert mapping is by_name[mapping.name]

    def test_small_frontier_falls_back_inline(self, intro_network):
        plan = plan_neighborhood_probe(intro_network, ("p1",), ttl=4)
        run = ProcessPoolDiscoveryExecutor(workers=2, min_units=4).run(plan)
        assert run.sharded is False
        serial = SerialDiscoveryExecutor().run(plan)
        assert _names(run.merged()[0]) == _names(serial.merged()[0])


class TestPlans:
    def test_full_probe_frontier_shape(self, intro_network):
        plan = plan_full_probe(intro_network, ttl=4)
        kinds = [unit.kind for unit in plan.work_units]
        peers = list(intro_network.peer_names)
        assert kinds == [CYCLES_THROUGH] * len(peers) + [PATHS_FROM] * len(peers)

    def test_paths_can_be_excluded(self, intro_network):
        plan = plan_full_probe(intro_network, ttl=4, include_parallel_paths=False)
        assert all(unit.kind == CYCLES_THROUGH for unit in plan.work_units)
        _, paths = SerialDiscoveryExecutor().run(plan).merged()
        assert paths == ()

    def test_neighborhood_probe_rejects_unknown_peer(self, intro_network):
        with pytest.raises(UnknownPeerError):
            plan_neighborhood_probe(intro_network, ("p1", "zz"), ttl=4)

    def test_mapping_delta_via_filter(self, intro_network):
        # The delta plan for one added mapping only yields structures that
        # actually traverse it.
        plan = plan_mapping_delta(intro_network, "p1->p2", ttl=4)
        cycles, paths = SerialDiscoveryExecutor().run(plan).merged()
        assert cycles
        for cycle in cycles:
            assert "p1->p2" in cycle.mapping_names
        reference = find_parallel_paths_through(intro_network, "p1->p2", ttl=4)
        assert {p.canonical_key() for p in paths} == {
            p.canonical_key() for p in reference
        }

    def test_non_positive_ttl_rejected(self, intro_network):
        with pytest.raises(ValueError, match="positive hop count"):
            plan_full_probe(intro_network, ttl=0)


class TestResolution:
    def test_default_is_serial(self):
        assert isinstance(resolve_discovery_executor(None), SerialDiscoveryExecutor)

    def test_strings_resolve(self):
        assert isinstance(
            resolve_discovery_executor("serial"), SerialDiscoveryExecutor
        )
        pooled = resolve_discovery_executor("process", workers=3)
        assert isinstance(pooled, ProcessPoolDiscoveryExecutor)

    def test_executor_objects_pass_through(self):
        executor = ProcessPoolDiscoveryExecutor(workers=2)
        assert resolve_discovery_executor(executor) is executor

    def test_unknown_string_rejected(self):
        with pytest.raises(ValueError, match="unknown probe executor"):
            resolve_discovery_executor("quantum")

    def test_non_executor_object_rejected(self):
        with pytest.raises(ValueError):
            resolve_discovery_executor(object())

    def test_worker_resolution(self):
        assert resolve_probe_workers(3) == 3
        assert resolve_probe_workers(None) >= 1
        with pytest.raises(ValueError, match=">= 1"):
            resolve_probe_workers(0)
