"""Unit tests for query reformulation through mappings."""

import pytest

from repro.exceptions import QueryError
from repro.mapping.mapping import Mapping
from repro.pdms.query import Query, substring_predicate
from repro.pdms.reformulation import reformulate, reformulate_through_chain


@pytest.fixture
def query():
    return Query.select_project(
        "p2",
        project=["Creator"],
        where={"Subject": substring_predicate("river")},
    )


class TestReformulate:
    def test_translates_attributes(self, query):
        mapping = Mapping.from_pairs(
            "p2", "p3", {"Creator": "Author", "Subject": "Topic"}
        )
        result = reformulate(query, mapping)
        assert result.is_complete
        assert result.query.schema_name == "p3"
        assert result.query.attributes == ("Author", "Topic")
        assert result.translated == {"Creator": "Author", "Subject": "Topic"}

    def test_keeps_query_id(self, query):
        mapping = Mapping.from_pairs("p2", "p3", {"Creator": "Author", "Subject": "Topic"})
        assert reformulate(query, mapping).query.query_id == query.query_id

    def test_drops_untranslatable_operations(self, query):
        mapping = Mapping.from_pairs("p2", "p3", {"Creator": "Author"})
        result = reformulate(query, mapping)
        assert not result.is_complete
        assert result.lost == ("Subject",)
        assert result.query.attributes == ("Author",)

    def test_returns_none_query_when_nothing_translates(self, query):
        mapping = Mapping.from_pairs("p2", "p3", {"Title": "Title"})
        result = reformulate(query, mapping)
        assert result.query is None
        assert set(result.lost) == {"Creator", "Subject"}

    def test_schema_mismatch_rejected(self, query):
        mapping = Mapping.from_pairs("p9", "p3", {"Creator": "Author"})
        with pytest.raises(QueryError):
            reformulate(query, mapping)


class TestReformulateThroughChain:
    def test_identity_chain_round_trip(self, query):
        chain = [
            Mapping.from_pairs("p2", "p3", {"Creator": "Creator", "Subject": "Subject"}),
            Mapping.from_pairs("p3", "p2", {"Creator": "Creator", "Subject": "Subject"}),
        ]
        result = reformulate_through_chain(query, chain)
        assert result.is_complete
        assert result.translated == {"Creator": "Creator", "Subject": "Subject"}

    def test_tracks_loss_in_original_attribute_names(self, query):
        chain = [
            Mapping.from_pairs("p2", "p3", {"Creator": "Author", "Subject": "Topic"}),
            Mapping.from_pairs("p3", "p4", {"Author": "Painter"}),
        ]
        result = reformulate_through_chain(query, chain)
        assert result.lost == ("Subject",)
        assert result.translated == {"Creator": "Painter"}

    def test_empty_chain_rejected(self, query):
        with pytest.raises(QueryError):
            reformulate_through_chain(query, [])

    def test_all_lost_returns_none_query(self, query):
        chain = [Mapping.from_pairs("p2", "p3", {"Title": "Title"})]
        result = reformulate_through_chain(query, chain)
        assert result.query is None
