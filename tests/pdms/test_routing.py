"""Unit tests for quality-aware query routing."""

import pytest

from repro.exceptions import UnknownPeerError
from repro.generators.paper import intro_example_network
from repro.pdms.query import Query, substring_predicate
from repro.pdms.routing import QueryRouter, RoutingPolicy, execute_locally


@pytest.fixture
def network():
    return intro_example_network(with_records=True)


@pytest.fixture
def river_query():
    return Query.select_project(
        "p2",
        project=["Creator"],
        where={"Subject": substring_predicate("river")},
    )


class TestRoutingPolicy:
    def test_default_threshold(self):
        policy = RoutingPolicy(default_threshold=0.4)
        assert policy.threshold_for("anything") == 0.4

    def test_per_attribute_threshold(self):
        policy = RoutingPolicy(default_threshold=0.4, attribute_thresholds={"Creator": 0.8})
        assert policy.threshold_for("Creator") == 0.8
        assert policy.threshold_for("Title") == 0.4


class TestExecuteLocally:
    def test_selection_and_projection(self, network, river_query):
        records = execute_locally(river_query, network, "p2")
        assert len(records) == 2
        assert all(set(record.values) == {"Creator"} for record in records)

    def test_missing_selection_attribute_yields_nothing(self, network):
        query = Query.select_project(
            "p2", project=["Creator"], where={"Nonexistent": lambda v: True}
        )
        # The attribute is not in the schema: nothing can match.
        assert execute_locally(query, network, "p2") == ()


class TestQueryRouterStandard:
    def test_standard_router_floods_everywhere(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        trace = router.route(river_query)
        assert set(trace.visited_peers) == {"p1", "p2", "p3", "p4"}

    def test_standard_router_produces_false_positive(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        trace = router.route(river_query)
        answers = [record for answer in trace.answers for record in answer.records]
        # The p4 answer arrives through the faulty mapping, projected onto
        # CreatedOn, hence lacks a proper Creator value.
        assert any(record.get("Creator") is None for record in answers)

    def test_unknown_origin_raises(self, network, river_query):
        router = QueryRouter(network)
        with pytest.raises(UnknownPeerError):
            router.route(river_query, origin="zz")

    def test_ttl_zero_stays_local(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0, ttl=0))
        trace = router.route(river_query)
        assert trace.visited_peers == ["p2"]


class TestQueryRouterQualityAware:
    def test_low_quality_mapping_blocked(self, network, river_query):
        def oracle(mapping, attribute):
            return 0.3 if mapping.name == "p2->p4" else 0.9

        router = QueryRouter(
            network, policy=RoutingPolicy(default_threshold=0.5), quality_oracle=oracle
        )
        trace = router.route(river_query)
        blocked = {hop.mapping_name for hop in trace.blocked_hops}
        assert "p2->p4" in blocked
        # The query still reaches every peer through the good mappings.
        assert set(trace.visited_peers) == {"p1", "p2", "p3", "p4"}

    def test_no_false_positives_with_quality_routing(self, network, river_query):
        def oracle(mapping, attribute):
            return 0.3 if mapping.name == "p2->p4" else 0.9

        router = QueryRouter(
            network, policy=RoutingPolicy(default_threshold=0.5), quality_oracle=oracle
        )
        trace = router.route(river_query)
        answers = [record for answer in trace.answers for record in answer.records]
        assert all(record.get("Creator") is not None for record in answers)

    def test_forwarding_decision_reports_probabilities(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.5))
        mapping = network.mapping("p2->p3")
        forward, reason, probabilities = router.forwarding_decision(river_query, mapping)
        assert forward
        assert set(probabilities) == {"Creator", "Subject"}

    def test_missing_correspondence_blocks_by_default(self, network):
        query = Query.select_project("p2", project=["Creator", "Rights"])
        from repro.mapping.mapping import Mapping

        partial = Mapping.from_pairs("p2", "p3", {"Creator": "Creator"}, label="partial")
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        forward, reason, _ = router.forwarding_decision(query, partial)
        assert not forward
        assert "Rights" in reason

    def test_forward_on_partial_policy(self, network):
        query = Query.select_project("p2", project=["Creator", "Rights"])
        from repro.mapping.mapping import Mapping

        partial = Mapping.from_pairs("p2", "p3", {"Creator": "Creator"}, label="partial")
        router = QueryRouter(
            network,
            policy=RoutingPolicy(default_threshold=0.0, forward_on_partial=True),
        )
        forward, _, _ = router.forwarding_decision(query, partial)
        assert forward


class TestTrace:
    def test_trace_summary_mentions_hops(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        trace = router.route(river_query)
        summary = trace.summary()
        assert "query" in summary
        assert "p2->p3" in summary

    def test_used_mappings_subset_of_forwarded(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        trace = router.route(river_query)
        assert set(trace.used_mappings()) == {
            hop.mapping_name for hop in trace.forwarded_hops
        }

    def test_answers_from(self, network, river_query):
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        trace = router.route(river_query)
        assert len(trace.answers_from("p2")) == 2
