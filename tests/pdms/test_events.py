"""Unit and property tests for the typed topology event log."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import NetworkStructureCache
from repro.exceptions import PDMSError
from repro.mapping.mapping import Mapping
from repro.pdms.clock import VectorClock
from repro.pdms.events import (
    GossipJournal,
    JournalEntry,
    MappingAdded,
    MappingRemoved,
    PeerAdded,
    PeerRemoved,
    TopologyEvent,
    apply,
)
from repro.pdms.network import PDMSNetwork
from repro.pdms.peer import Peer
from repro.schema.schema import Schema


def schema(name):
    return Schema(name, ["Creator", "Title"])


def identity(source, target, label=""):
    return Mapping.from_pairs(
        source, target, {"Creator": "Creator", "Title": "Title"}, label=label
    )


@pytest.fixture
def network():
    net = PDMSNetwork("test", directed=True)
    for name in ("p1", "p2", "p3"):
        net.add_peer(Peer(name, schema(name)))
    return net


class TestApply:
    def test_peer_added(self, network):
        peer = apply(network, PeerAdded(name="p4", schema=schema("p4")))
        assert isinstance(peer, Peer)
        assert network.has_peer("p4")

    def test_peer_removed(self, network):
        apply(network, PeerRemoved(name="p3"))
        assert not network.has_peer("p3")

    def test_mapping_added_is_directional(self, network):
        apply(network, MappingAdded(mapping=identity("p1", "p2")))
        assert network.has_mapping("p1->p2")
        assert not network.has_mapping("p2->p1")

    def test_mapping_removed(self, network):
        network.add_mapping(identity("p1", "p2"))
        apply(network, MappingRemoved(name="p1->p2"))
        assert not network.has_mapping("p1->p2")

    def test_unknown_event_rejected(self, network):
        with pytest.raises(PDMSError):
            apply(network, TopologyEvent())

    def test_malformed_event_raises_the_mutator_error(self, network):
        with pytest.raises(PDMSError):
            apply(network, PeerAdded(name="p1", schema=schema("p1")))


class TestEventLog:
    def test_mutators_record_typed_events(self, network):
        start = network.version
        network.add_mapping(identity("p1", "p2"))
        network.add_peer(Peer("p4", schema("p4")))
        network.remove_mapping("p1->p2")
        network.remove_peer("p4")
        events = [event for _, event in network.events_since(start)]
        assert [type(e) for e in events] == [
            MappingAdded,
            PeerAdded,
            MappingRemoved,
            PeerRemoved,
        ]

    def test_legacy_view_is_derived_from_events(self, network):
        start = network.version
        network.add_mapping(identity("p1", "p2"))
        network.remove_peer("p3")
        assert network.mutations_since(start) == tuple(
            event.as_legacy(version)
            for version, event in network.events_since(start)
        )

    def test_remove_peer_cascades_incident_mappings_first(self, network):
        network.add_mapping(identity("p1", "p2"))
        network.add_mapping(identity("p2", "p3"))
        start = network.version
        network.remove_peer("p2")
        events = [event for _, event in network.events_since(start)]
        assert events == [
            MappingRemoved(name="p1->p2"),
            MappingRemoved(name="p2->p3"),
            PeerRemoved(name="p2"),
        ]

    def test_from_events_replays_exactly(self, network):
        network.add_mapping(identity("p1", "p2"))
        network.add_mapping(identity("p2", "p3"))
        network.remove_mapping("p1->p2")
        network.add_peer(Peer("p4", schema("p4")))
        network.remove_peer("p3")
        replayed = PDMSNetwork.from_events(network.event_log(), name="test")
        assert replayed.peer_names == network.peer_names
        assert replayed.mapping_names == network.mapping_names
        assert replayed.version == network.version


class TestWireTypes:
    def test_events_pickle_round_trip(self):
        mapping = identity("p1", "p2")
        for event in (
            PeerAdded(name="p1", schema=schema("p1")),
            PeerRemoved(name="p1"),
            MappingAdded(mapping=mapping),
            MappingRemoved(name="p1->p2"),
        ):
            clone = pickle.loads(pickle.dumps(event))
            assert type(clone) is type(event)
            assert clone.kind == event.kind
            assert clone.subject == event.subject

    def test_journal_entry_pickle_round_trip(self):
        journal = GossipJournal("a")
        entry = journal.append(PeerRemoved(name="p9"))
        clone = pickle.loads(pickle.dumps(entry))
        assert isinstance(clone, JournalEntry)
        assert clone.key == entry.key
        assert clone.clock == entry.clock

    def test_journal_entry_validates_seq_against_clock(self):
        with pytest.raises(PDMSError):
            JournalEntry(
                origin="a",
                seq=2,
                clock=VectorClock.of({"a": 1}),
                event=PeerRemoved(name="p9"),
            )


# ---------------------------------------------------------------------------
# property: any mutation sequence replays bit-identically
# ---------------------------------------------------------------------------

#: (op, i, j) triples interpreted modulo the current topology — invalid
#: draws degrade to no-ops, so every generated sequence is applicable.
operations = st.lists(
    st.tuples(
        st.sampled_from(["add_peer", "add_mapping", "remove_mapping", "remove_peer"]),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=30,
)


def _run_operations(network, ops):
    """Interpret the generated script; returns the mutation count applied."""
    applied = 0
    next_peer = 1
    for op, i, j in ops:
        peers = network.peer_names
        if op == "add_peer":
            name = f"q{next_peer}"
            next_peer += 1
            network.add_peer(Peer(name, schema(name)))
            applied += 1
        elif op == "add_mapping" and len(peers) >= 2:
            source = peers[i % len(peers)]
            target = peers[j % len(peers)]
            if source != target and not network.mappings_between(source, target):
                network.add_mapping(identity(source, target))
                applied += 1
        elif op == "remove_mapping" and network.mapping_names:
            names = network.mapping_names
            network.remove_mapping(names[i % len(names)])
            applied += 1
        elif op == "remove_peer" and peers:
            network.remove_peer(peers[i % len(peers)])
            applied += 1
    return applied


@given(operations)
@settings(max_examples=50, deadline=None)
def test_any_mutation_sequence_replays_bit_identically(ops):
    network = PDMSNetwork("subject", directed=True)
    _run_operations(network, ops)
    replayed = PDMSNetwork.from_events(network.event_log(), name="subject")
    assert replayed.peer_names == network.peer_names
    assert replayed.mapping_names == network.mapping_names
    assert replayed.version == network.version
    for name in network.mapping_names:
        original = network.mapping(name)
        clone = replayed.mapping(name)
        assert clone.source == original.source
        assert clone.target == original.target
        assert clone.source_attributes == original.source_attributes


@given(operations)
@settings(max_examples=15, deadline=None)
def test_replayed_network_yields_identical_structure_cache(ops):
    network = PDMSNetwork("subject", directed=True)
    _run_operations(network, ops)
    replayed = PDMSNetwork.from_events(network.event_log(), name="subject")
    original_cycles, original_paths = NetworkStructureCache(
        network, ttl=4
    ).structures()
    replayed_cycles, replayed_paths = NetworkStructureCache(
        replayed, ttl=4
    ).structures()
    assert [c.canonical_key() for c in replayed_cycles] == [
        c.canonical_key() for c in original_cycles
    ]
    assert [p.canonical_key() for p in replayed_paths] == [
        p.canonical_key() for p in original_paths
    ]
