"""Unit tests for repro.pdms.query."""

import pytest

from repro.exceptions import QueryError
from repro.pdms.query import Operation, OperationKind, Query, substring_predicate


class TestOperation:
    def test_projection(self):
        op = Operation(OperationKind.PROJECTION, "Creator")
        assert op.kind is OperationKind.PROJECTION
        assert op.predicate is None

    def test_selection_requires_predicate(self):
        with pytest.raises(QueryError):
            Operation(OperationKind.SELECTION, "Creator")

    def test_projection_must_not_carry_predicate(self):
        with pytest.raises(QueryError):
            Operation(OperationKind.PROJECTION, "Creator", predicate=lambda v: True)

    def test_empty_attribute_rejected(self):
        with pytest.raises(QueryError):
            Operation(OperationKind.PROJECTION, "")

    def test_renamed_keeps_kind_and_predicate(self):
        op = Operation(OperationKind.SELECTION, "Creator", predicate=lambda v: True)
        renamed = op.renamed("Author")
        assert renamed.attribute == "Author"
        assert renamed.kind is OperationKind.SELECTION
        assert renamed.predicate is op.predicate


class TestSubstringPredicate:
    def test_case_insensitive_match(self):
        predicate = substring_predicate("river")
        assert predicate("Starry night over the River Rhone")
        assert not predicate("Sunflowers")

    def test_non_string_values_coerced(self):
        assert substring_predicate("18")(1888)


class TestQuery:
    def test_requires_operations(self):
        with pytest.raises(QueryError):
            Query(schema_name="p2", operations=())

    def test_requires_schema(self):
        with pytest.raises(QueryError):
            Query(schema_name="", operations=(Operation(OperationKind.PROJECTION, "A"),))

    def test_attributes_deduplicated_in_order(self):
        query = Query.select_project(
            "p2", project=["Creator", "Title"], where={"Creator": lambda v: True}
        )
        assert query.attributes == ("Creator", "Title")

    def test_select_project_builder(self):
        query = Query.select_project(
            "p2",
            project=["Creator"],
            where={"Subject": substring_predicate("river")},
            where_descriptions={"Subject": "LIKE '%river%'"},
        )
        assert len(query.projections) == 1
        assert len(query.selections) == 1
        assert query.selections[0].predicate_description == "LIKE '%river%'"

    def test_query_ids_are_unique(self):
        first = Query.select_project("p2", project=["A"])
        second = Query.select_project("p2", project=["A"])
        assert first.query_id != second.query_id

    def test_with_operations_preserves_id(self):
        query = Query.select_project("p2", project=["A"])
        rewritten = query.with_operations(
            [Operation(OperationKind.PROJECTION, "B")], schema_name="p3"
        )
        assert rewritten.query_id == query.query_id
        assert rewritten.schema_name == "p3"
        assert rewritten.attributes == ("B",)
