"""Tests for the gossip journal's causal delivery and the multi-node harness."""

import pytest

from repro.exceptions import PDMSError, UnknownPeerError
from repro.generators.paper import intro_example_network
from repro.pdms.events import GossipJournal, MappingAdded, PeerAdded, PeerRemoved
from repro.pdms.gossip import GossipHarness, PeerNode, SeededTransport


def intro_events():
    """The intro network as (peer events by origin, mapping events by origin)."""
    network = intro_example_network(with_records=False)
    peer_events = {
        peer.name: PeerAdded(name=peer.name, schema=peer.schema)
        for peer in network.peers
    }
    mapping_events = {}
    for mapping in network.mappings:
        mapping_events.setdefault(mapping.source, []).append(
            MappingAdded(mapping=mapping)
        )
    return network, peer_events, mapping_events


class TestJournalCausalDelivery:
    def test_append_delivers_locally(self):
        journal = GossipJournal("a")
        entry = journal.append(PeerRemoved(name="x"))
        assert journal.entries() == (entry,)
        assert journal.clock.counter("a") == 1
        assert journal.pending_count == 0

    def test_out_of_order_same_origin_is_buffered(self):
        source = GossipJournal("a")
        first = source.append(PeerRemoved(name="x"))
        second = source.append(PeerRemoved(name="y"))
        sink = GossipJournal("b")
        assert sink.receive(second) == ()
        assert sink.pending_count == 1
        assert sink.deliveries_buffered == 1
        # The missing predecessor unlocks the buffered entry.
        assert sink.receive(first) == (first, second)
        assert sink.pending_count == 0
        assert sink.canonical_entries() == (first, second)

    def test_cross_origin_causality_is_respected(self):
        a = GossipJournal("a")
        cause = a.append(PeerRemoved(name="x"))
        b = GossipJournal("b")
        b.receive(cause)
        effect = b.append(PeerRemoved(name="y"))
        assert effect.clock.counter("a") == 1
        # A third replica seeing the effect first must wait for the cause.
        c = GossipJournal("c")
        assert c.receive(effect) == ()
        assert c.pending_count == 1
        assert c.receive(cause) == (cause, effect)

    def test_duplicates_are_dropped(self):
        source = GossipJournal("a")
        entry = source.append(PeerRemoved(name="x"))
        sink = GossipJournal("b")
        sink.receive(entry)
        assert sink.receive(entry) == ()
        assert sink.duplicates_dropped == 1
        assert len(sink.entries()) == 1

    def test_buffered_duplicate_is_dropped_too(self):
        source = GossipJournal("a")
        source.append(PeerRemoved(name="x"))
        second = source.append(PeerRemoved(name="y"))
        sink = GossipJournal("b")
        sink.receive(second)
        assert sink.receive(second) == ()
        assert sink.duplicates_dropped == 1

    def test_canonical_order_is_arrival_independent(self):
        source = GossipJournal("a")
        entries = [source.append(PeerRemoved(name=f"x{i}")) for i in range(4)]
        forward, backward = GossipJournal("f"), GossipJournal("b")
        for entry in entries:
            forward.receive(entry)
        for entry in reversed(entries):
            backward.receive(entry)
        assert forward.canonical_entries() == backward.canonical_entries()
        assert forward.canonical_events() == tuple(e.event for e in entries)

    def test_delta_for_skips_what_the_target_knows(self):
        source = GossipJournal("a")
        first = source.append(PeerRemoved(name="x"))
        second = source.append(PeerRemoved(name="y"))
        sink = GossipJournal("b")
        sink.receive(first)
        assert source.delta_for(sink.clock) == (second,)
        assert source.delta_for(source.clock) == ()

    def test_owner_must_be_non_empty(self):
        with pytest.raises(PDMSError):
            GossipJournal("")


class TestSeededTransport:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(PDMSError):
            SeededTransport(drop_probability=1.0)
        with pytest.raises(PDMSError):
            SeededTransport(duplicate_probability=1.5)

    def test_same_seed_same_disturbances(self):
        source = GossipJournal("a")
        entries = [source.append(PeerRemoved(name=f"x{i}")) for i in range(20)]

        def run(seed):
            transport = SeededTransport(
                seed=seed, drop_probability=0.3, duplicate_probability=0.3
            )
            for entry in entries:
                transport.send("b", entry)
            return transport.deliver(), transport.dropped, transport.duplicated

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestPeerNode:
    def test_assess_before_own_peer_event_raises(self):
        node = PeerNode("p1")
        with pytest.raises(UnknownPeerError):
            node.assess_local("Creator")

    def test_replica_is_rebuilt_only_on_growth(self):
        network, peer_events, _ = intro_events()
        node = PeerNode("p1")
        node.originate(peer_events["p1"])
        replica = node.local_network()
        assert node.local_network() is replica
        node.originate(peer_events["p2"])
        assert node.local_network() is not replica


class TestGossipHarness:
    def test_validation(self):
        with pytest.raises(PDMSError):
            GossipHarness([])
        with pytest.raises(PDMSError):
            GossipHarness([PeerNode("a"), PeerNode("a")])
        with pytest.raises(PDMSError):
            GossipHarness([PeerNode("a")], fanout=0)
        with pytest.raises(UnknownPeerError):
            GossipHarness([PeerNode("a")]).node("zz")

    def test_nonconvergence_raises(self):
        harness = GossipHarness.of_names(["a", "b"])
        harness.originate("a", PeerRemoved(name="x"))
        with pytest.raises(PDMSError):
            harness.run_until_converged(max_rounds=0)

    @pytest.mark.parametrize(
        "drop,duplicate,reorder",
        [
            (0.0, 0.0, False),  # perfect channel
            (0.0, 0.0, True),  # reordering only
            (0.3, 0.0, True),  # heavy loss
            (0.0, 0.5, True),  # heavy duplication
            (0.2, 0.2, True),  # everything at once
        ],
    )
    @pytest.mark.parametrize("seed", [1, 99])
    def test_delivery_matrix_converges_to_identical_replicas(
        self, drop, duplicate, reorder, seed
    ):
        network, peer_events, mapping_events = intro_events()
        transport = SeededTransport(
            seed=seed,
            drop_probability=drop,
            duplicate_probability=duplicate,
            reorder=reorder,
        )
        harness = GossipHarness.of_names(
            network.peer_names, transport=transport, fanout=2, seed=seed
        )
        for name, event in peer_events.items():
            harness.originate(name, event)
        for name, events in mapping_events.items():
            for event in events:
                harness.originate(name, event)
        harness.run_until_converged(max_rounds=256)
        assert harness.converged()
        canonical = harness.nodes[0].journal.canonical_events()
        for node in harness.nodes:
            assert node.journal.canonical_events() == canonical
            assert node.journal.pending_count == 0
            replica = node.local_network()
            # The replica replays in canonical (clock-total) order, so the
            # sets match the template even when the insertion order differs.
            assert sorted(replica.peer_names) == sorted(network.peer_names)
            assert sorted(replica.mapping_names) == sorted(network.mapping_names)

    def test_converged_views_equal_the_oracle_exactly(self):
        network, peer_events, mapping_events = intro_events()
        transport = SeededTransport(
            seed=5, drop_probability=0.2, duplicate_probability=0.2
        )
        harness = GossipHarness.of_names(
            network.peer_names, transport=transport, fanout=2, seed=5
        )
        for name, event in peer_events.items():
            harness.originate(name, event)
        harness.run_until_converged()
        for name, events in mapping_events.items():
            for event in events:
                harness.originate(name, event)
        harness.run_until_converged()
        assert sorted(harness.oracle_network().mapping_names) == sorted(
            network.mapping_names
        )
        local = harness.local_views("Creator")
        oracle = harness.oracle_views("Creator")
        assert local == oracle  # exact float equality, not approximate

    def test_same_seed_reproduces_the_run(self):
        def run(seed):
            network, peer_events, mapping_events = intro_events()
            transport = SeededTransport(seed=seed, drop_probability=0.2)
            harness = GossipHarness.of_names(
                network.peer_names, transport=transport, fanout=2, seed=seed
            )
            for name, event in peer_events.items():
                harness.originate(name, event)
            rounds = harness.run_until_converged()
            return rounds, transport.sent, transport.dropped

        assert run(11) == run(11)

    def test_broadcast_reaches_every_node(self):
        network, peer_events, _ = intro_events()
        harness = GossipHarness.of_names(network.peer_names, seed=3)
        harness.broadcast("p1", peer_events.values())
        for node in harness.nodes:
            assert node.local_network().peer_names == network.peer_names
