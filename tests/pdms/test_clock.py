"""Unit tests for the dynamic vector clock."""

import pickle

import pytest

from repro.exceptions import PDMSError
from repro.pdms.clock import VectorClock


class TestConstruction:
    def test_empty_clock(self):
        clock = VectorClock()
        assert clock.entries == ()
        assert clock.counter("anyone") == 0
        assert clock.total() == 0
        assert clock.peer_names == ()

    def test_of_normalises_to_canonical_order(self):
        clock = VectorClock.of({"b": 2, "a": 1})
        assert clock.entries == (("a", 1), ("b", 2))
        assert clock == VectorClock.of({"a": 1, "b": 2})

    def test_of_drops_zero_counters(self):
        assert VectorClock.of({"a": 0}) == VectorClock()

    def test_rejects_negative_counters(self):
        with pytest.raises(PDMSError):
            VectorClock.of({"a": -1})

    def test_rejects_unsorted_raw_entries(self):
        with pytest.raises(PDMSError):
            VectorClock(entries=(("b", 1), ("a", 1)))


class TestIncrementAndMerge:
    def test_increment_grows_dynamically(self):
        clock = VectorClock().increment("a")
        assert clock.counter("a") == 1
        clock = clock.increment("b").increment("a")
        assert clock.as_dict() == {"a": 2, "b": 1}
        assert clock.total() == 3

    def test_increment_is_pure(self):
        base = VectorClock.of({"a": 1})
        base.increment("a")
        assert base.counter("a") == 1

    def test_merge_takes_componentwise_max(self):
        left = VectorClock.of({"a": 3, "b": 1})
        right = VectorClock.of({"b": 2, "c": 5})
        merged = left.merge(right)
        assert merged.as_dict() == {"a": 3, "b": 2, "c": 5}
        assert merged == right.merge(left)

    def test_merge_with_empty_is_identity(self):
        clock = VectorClock.of({"a": 2})
        assert clock.merge(VectorClock()) == clock
        assert VectorClock().merge(clock) == clock


class TestOrdering:
    def test_dominates_is_reflexive(self):
        clock = VectorClock.of({"a": 1, "b": 2})
        assert clock.dominates(clock)

    def test_dominates_strict_happens_before(self):
        earlier = VectorClock.of({"a": 1})
        later = earlier.increment("a").increment("b")
        assert later.dominates(earlier)
        assert not earlier.dominates(later)

    def test_concurrent_clocks(self):
        left = VectorClock.of({"a": 1})
        right = VectorClock.of({"b": 1})
        assert left.concurrent_with(right)
        assert right.concurrent_with(left)
        assert not left.concurrent_with(left)

    def test_cause_has_strictly_smaller_total(self):
        # The Lamport-sum linearization property the canonical gossip
        # order relies on: an effect's clock sums strictly above its
        # cause's.
        cause = VectorClock.of({"a": 2, "b": 1})
        effect = cause.increment("c")
        assert effect.total() > cause.total()


class TestWire:
    def test_pickle_round_trip(self):
        clock = VectorClock.of({"a": 3, "b": 1})
        assert pickle.loads(pickle.dumps(clock)) == clock

    def test_hashable(self):
        assert len({VectorClock.of({"a": 1}), VectorClock.of({"a": 1})}) == 1
