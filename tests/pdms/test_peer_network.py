"""Unit tests for peers and the PDMS network container."""

import pytest

from repro.exceptions import PDMSError, UnknownPeerError
from repro.mapping.mapping import Mapping
from repro.pdms.network import PDMSNetwork
from repro.pdms.peer import Peer
from repro.schema.schema import Schema


def schema(name):
    return Schema(name, ["Creator", "Title"])


@pytest.fixture
def network():
    net = PDMSNetwork("test", directed=True)
    for name in ("p1", "p2", "p3"):
        net.add_peer(Peer(name, schema(name)))
    return net


class TestPeer:
    def test_requires_name(self):
        with pytest.raises(PDMSError):
            Peer("", schema("s"))

    def test_outgoing_mapping_must_depart_from_peer(self):
        peer = Peer("p1", schema("p1"))
        with pytest.raises(PDMSError):
            peer.add_outgoing_mapping(Mapping.from_pairs("p2", "p3", {"Creator": "Creator"}))

    def test_duplicate_outgoing_mapping_rejected(self):
        peer = Peer("p1", schema("p1"))
        mapping = Mapping.from_pairs("p1", "p2", {"Creator": "Creator"})
        peer.add_outgoing_mapping(mapping)
        with pytest.raises(PDMSError):
            peer.add_outgoing_mapping(Mapping.from_pairs("p1", "p2", {"Title": "Title"}))

    def test_neighbor_names_and_mappings_to(self):
        peer = Peer("p1", schema("p1"))
        peer.add_outgoing_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        peer.add_outgoing_mapping(
            Mapping.from_pairs("p1", "p2", {"Title": "Title"}, label="alt")
        )
        peer.add_outgoing_mapping(Mapping.from_pairs("p1", "p3", {"Creator": "Creator"}))
        assert peer.neighbor_names == ("p2", "p3")
        assert len(peer.mappings_to("p2")) == 2

    def test_mapping_named(self):
        peer = Peer("p1", schema("p1"))
        mapping = peer.add_outgoing_mapping(
            Mapping.from_pairs("p1", "p2", {"Creator": "Creator"})
        )
        assert peer.mapping_named("p1->p2") is mapping
        with pytest.raises(PDMSError):
            peer.mapping_named("p1->p9")

    def test_insert_records(self):
        peer = Peer("p1", schema("p1"), records=[{"Creator": "Monet"}])
        assert peer.record_count == 1
        peer.insert({"Creator": "Degas"})
        assert peer.record_count == 2


class TestPDMSNetwork:
    def test_add_peer_from_schema(self):
        net = PDMSNetwork()
        peer = net.add_peer(schema("p1"))
        assert isinstance(peer, Peer)
        assert net.has_peer("p1")

    def test_duplicate_peer_rejected(self, network):
        with pytest.raises(PDMSError):
            network.add_peer(Peer("p1", schema("p1")))

    def test_unknown_peer_lookup_raises(self, network):
        with pytest.raises(UnknownPeerError):
            network.peer("zz")

    def test_add_mapping_registers_on_owner(self, network):
        mapping = Mapping.from_pairs("p1", "p2", {"Creator": "Creator"})
        network.add_mapping(mapping)
        assert network.has_mapping("p1->p2")
        assert network.peer("p1").mappings_to("p2") == (mapping,)

    def test_add_mapping_unknown_endpoint_rejected(self, network):
        with pytest.raises(UnknownPeerError):
            network.add_mapping(Mapping.from_pairs("p1", "p9", {"Creator": "Creator"}))
        with pytest.raises(UnknownPeerError):
            network.add_mapping(Mapping.from_pairs("p9", "p1", {"Creator": "Creator"}))

    def test_duplicate_mapping_rejected(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        with pytest.raises(PDMSError):
            network.add_mapping(Mapping.from_pairs("p1", "p2", {"Title": "Title"}))

    def test_undirected_network_registers_reverse(self):
        net = PDMSNetwork(directed=False)
        net.add_peer(Peer("a", schema("a")))
        net.add_peer(Peer("b", schema("b")))
        net.add_mapping(Mapping.from_pairs("a", "b", {"Creator": "Creator"}))
        assert net.has_mapping("a->b")
        assert net.has_mapping("b->a")

    def test_directed_network_does_not_reverse_by_default(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        assert not network.has_mapping("p2->p1")

    def test_mappings_between(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        network.add_mapping(
            Mapping.from_pairs("p1", "p2", {"Title": "Title"}, label="alt")
        )
        assert len(network.mappings_between("p1", "p2")) == 2
        assert network.mappings_between("p2", "p1") == ()

    def test_to_networkx(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        graph = network.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 1

    def test_attribute_universe(self, network):
        assert network.attribute_universe() == ("Creator", "Title")

    def test_out_degree(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        assert network.out_degree("p1") == 1
        assert network.out_degree("p2") == 0

    def test_clustering_coefficient_triangle(self, network):
        for source, target in (("p1", "p2"), ("p2", "p3"), ("p3", "p1")):
            network.add_mapping(Mapping.from_pairs(source, target, {"Creator": "Creator"}))
        assert network.clustering_coefficient() == pytest.approx(1.0)

    def test_len_and_iter(self, network):
        assert len(network) == 3
        assert {peer.name for peer in network} == {"p1", "p2", "p3"}


class TestMutationLog:
    def test_mutations_since_reports_peer_and_mapping_changes(self, network):
        start = network.version
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        network.add_peer(Peer("p4", schema("p4")))
        network.remove_mapping("p1->p2")
        mutations = network.mutations_since(start)
        assert [(kind, subject) for _, kind, subject in mutations] == [
            ("add_mapping", "p1->p2"),
            ("add_peer", "p4"),
            ("remove_mapping", "p1->p2"),
        ]
        # Versions in the log are strictly increasing past the start.
        versions = [version for version, _, _ in mutations]
        assert versions == sorted(versions)
        assert all(version > start for version in versions)

    def test_mutations_since_current_version_is_empty(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        assert network.mutations_since(network.version) == ()

    def test_bidirectional_add_logs_both_directions(self):
        net = PDMSNetwork("undirected", directed=False)
        net.add_peer(Peer("a", schema("a")))
        net.add_peer(Peer("b", schema("b")))
        start = net.version
        net.add_mapping(Mapping.from_pairs("a", "b", {"Creator": "Creator"}))
        kinds = [(k, s) for _, k, s in net.mutations_since(start)]
        assert ("add_mapping", "a->b") in kinds
        assert ("add_mapping", "b->a") in kinds

    def test_truncated_log_reports_none(self, network):
        start = network.version
        limit = PDMSNetwork.MUTATION_LOG_LIMIT
        for index in range(limit + 10):
            network.add_mapping(
                Mapping.from_pairs(
                    "p1", "p2", {"Creator": "Creator"}, label=f"m{index}"
                )
            )
            network.remove_mapping(f"p1->p2#m{index}")
        assert network.mutations_since(start) is None
        # Recent history is still reachable.
        assert network.mutations_since(network.version) == ()

    def test_deque_truncation_preserves_floor_semantics(self, network):
        """Regression for the bounded log's O(1) rewrite: the deque must
        keep exactly the newest LIMIT events and report every version at
        or below the truncation floor as unanswerable."""
        limit = PDMSNetwork.MUTATION_LOG_LIMIT
        assert not network.log_truncated
        total = limit + 25
        for index in range(total):
            network.add_mapping(
                Mapping.from_pairs(
                    "p1", "p2", {"Creator": "Creator"}, label=f"m{index}"
                )
            )
        assert network.log_truncated
        assert len(network.event_log()) == limit
        floor = network.version - limit
        # Below the floor the history is gone; at the floor the full
        # retained tail is served, contiguously versioned.
        assert network.events_since(floor - 1) is None
        tail = network.events_since(floor)
        assert tail is not None and len(tail) == limit
        versions = [version for version, _ in tail]
        assert versions == list(range(floor + 1, network.version + 1))
        # Every retained event is an addition from the overflow loop.
        assert all(event.kind == "add_mapping" for _, event in tail)


class TestRemovePeer:
    def test_remove_peer_drops_incident_mappings(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        network.add_mapping(Mapping.from_pairs("p2", "p3", {"Creator": "Creator"}))
        network.add_mapping(Mapping.from_pairs("p1", "p3", {"Creator": "Creator"}))
        removed = network.remove_peer("p2")
        assert isinstance(removed, Peer)
        assert removed.name == "p2"
        assert not network.has_peer("p2")
        assert network.mapping_names == ("p1->p3",)
        # The survivor's outgoing index no longer references the peer.
        assert network.peer("p1").mappings_to("p2") == ()

    def test_remove_unknown_peer_raises(self, network):
        with pytest.raises(UnknownPeerError):
            network.remove_peer("zz")

    def test_remove_peer_bumps_version_per_mutation(self, network):
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        network.add_mapping(Mapping.from_pairs("p2", "p3", {"Creator": "Creator"}))
        before = network.version
        network.remove_peer("p2")
        # Two cascaded mapping removals plus the peer removal itself.
        assert network.version == before + 3

    def test_churn_parity_with_a_fresh_network(self, network):
        """Adding a peer with mappings and removing it again leaves the
        network indistinguishable from one that never saw the churn."""
        network.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))
        network.add_peer(Peer("p4", schema("p4")))
        network.add_mapping(Mapping.from_pairs("p2", "p4", {"Creator": "Creator"}))
        network.add_mapping(Mapping.from_pairs("p4", "p1", {"Creator": "Creator"}))
        network.remove_peer("p4")

        fresh = PDMSNetwork("test", directed=True)
        for name in ("p1", "p2", "p3"):
            fresh.add_peer(Peer(name, schema(name)))
        fresh.add_mapping(Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}))

        assert network.peer_names == fresh.peer_names
        assert network.mapping_names == fresh.mapping_names
        for name in ("p1", "p2", "p3"):
            assert (
                network.peer(name).neighbor_names
                == fresh.peer(name).neighbor_names
            )

    def test_churned_structure_caches_match_a_fresh_network(self):
        """After churn, both structure caches serve exactly the structures
        a cache over a never-churned network serves."""
        from repro.core.analysis import (
            NetworkStructureCache,
            NeighborhoodStructureCache,
        )

        def ring(net):
            for source, target in (("p1", "p2"), ("p2", "p3"), ("p3", "p1")):
                net.add_mapping(
                    Mapping.from_pairs(source, target, {"Creator": "Creator"})
                )

        churned = PDMSNetwork("churned", directed=True)
        for name in ("p1", "p2", "p3"):
            churned.add_peer(Peer(name, schema(name)))
        ring(churned)
        cache = NetworkStructureCache(churned, ttl=4)
        neighborhood = NeighborhoodStructureCache(churned, ttl=4)
        cache.structures()
        neighborhood.structures_for("p1")
        churned.add_peer(Peer("p4", schema("p4")))
        churned.add_mapping(Mapping.from_pairs("p3", "p4", {"Creator": "Creator"}))
        churned.add_mapping(Mapping.from_pairs("p4", "p1", {"Creator": "Creator"}))
        churned.remove_peer("p4")

        fresh = PDMSNetwork("fresh", directed=True)
        for name in ("p1", "p2", "p3"):
            fresh.add_peer(Peer(name, schema(name)))
        ring(fresh)

        cycles, paths = cache.structures()
        fresh_cycles, fresh_paths = NetworkStructureCache(fresh, ttl=4).structures()
        assert [c.canonical_key() for c in cycles] == [
            c.canonical_key() for c in fresh_cycles
        ]
        assert [p.canonical_key() for p in paths] == [
            p.canonical_key() for p in fresh_paths
        ]
        local = neighborhood.structures_for("p1")
        fresh_local = NeighborhoodStructureCache(fresh, ttl=4).structures_for("p1")
        assert [c.canonical_key() for c in local[0]] == [
            c.canonical_key() for c in fresh_local[0]
        ]

    def test_remove_peer_forces_full_reprobe_on_both_caches(self):
        """PeerRemoved is not incrementally replayable: both caches must
        abandon the mutation log and re-probe from scratch."""
        from repro.core.analysis import (
            NetworkStructureCache,
            NeighborhoodStructureCache,
        )

        net = PDMSNetwork("test", directed=True)
        for name in ("p1", "p2", "p3", "p4"):
            net.add_peer(Peer(name, schema(name)))
        for source, target in (("p1", "p2"), ("p2", "p3"), ("p3", "p1")):
            net.add_mapping(
                Mapping.from_pairs(source, target, {"Creator": "Creator"})
            )
        cache = NetworkStructureCache(net, ttl=4)
        neighborhood = NeighborhoodStructureCache(net, ttl=4)
        cache.structures()
        neighborhood.structures_for("p1")
        net.remove_peer("p4")
        cache.structures()
        neighborhood.structures_for("p1")
        assert cache.statistics.probes == 2
        assert cache.statistics.partial_refreshes == 0
        assert neighborhood.statistics.probes == 2
        assert neighborhood.statistics.partial_refreshes == 0
