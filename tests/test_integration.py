"""End-to-end integration tests across the whole library.

Each test exercises the full pipeline a downstream user would run: build or
generate a PDMS, assess mapping quality, and act on the posteriors (routing,
prior updates, detection scoring).
"""

import pytest

from repro import (
    MappingQualityAssessor,
    PriorBeliefStore,
    Query,
    RoutingPolicy,
    generate_scenario,
    intro_example_network,
    substring_predicate,
)
from repro.alignment import build_eon_network
from repro.evaluation.metrics import score_detection


class TestIntroductoryScenario:
    """The full §1.2 / §4.5 story, end to end on the materialised network."""

    @pytest.fixture(scope="class")
    def assessor(self):
        network = intro_example_network(with_records=True)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        assessor.assess_attribute("Creator")
        return assessor

    def test_detection(self, assessor):
        assert assessor.flagged_mappings("Creator", theta=0.5) == ("p2->p4",)

    def test_quality_aware_routing_eliminates_false_positives(self, assessor):
        router = assessor.router(policy=RoutingPolicy(default_threshold=0.5))
        query = Query.select_project(
            "p2",
            project=["Creator"],
            where={"Subject": substring_predicate("river")},
        )
        trace = router.route(query)
        answers = [record for answer in trace.answers for record in answer.records]
        assert set(trace.visited_peers) == {"p1", "p2", "p3", "p4"}
        assert all(record.get("Creator") is not None for record in answers)

    def test_prior_update_cycle(self, assessor):
        updated = assessor.update_priors(["Creator"])
        assert updated[("p2->p4", "Creator")] < 0.5
        # Re-assessing with the updated priors keeps (and sharpens) the verdict.
        second = assessor.assess_attribute("Creator")
        assert second.posteriors["p2->p4"] < 0.5


class TestGeneratedScenario:
    """Detection quality on a synthetic scale-free PDMS with injected errors."""

    @pytest.fixture(scope="class")
    def outcome(self):
        scenario = generate_scenario(
            topology="scale-free", peer_count=10, attribute_count=8,
            error_rate=0.15, seed=11,
        )
        assessor = MappingQualityAssessor(scenario.network, delta=None, ttl=3)
        attribute = scenario.network.attribute_universe()[0]
        assessment = assessor.assess_attribute(attribute)
        posteriors = {
            (name, attribute): value for name, value in assessment.posteriors.items()
        }
        ground_truth = {
            (name, attr): correct
            for (name, attr), correct in scenario.ground_truth.items()
            if attr == attribute and (name, attribute) in posteriors
        }
        return scenario, posteriors, ground_truth

    def test_detector_beats_chance(self, outcome):
        scenario, posteriors, ground_truth = outcome
        if not any(not ok for ok in ground_truth.values()):
            pytest.skip("seed produced no erroneous mapping for this attribute")
        metrics = score_detection(posteriors, ground_truth, theta=0.5)
        error_rate = sum(1 for ok in ground_truth.values() if not ok) / len(ground_truth)
        if metrics.counts.flagged:
            assert metrics.precision >= error_rate
        assert metrics.counts.total == len(ground_truth)

    def test_posteriors_are_probabilities(self, outcome):
        _, posteriors, _ = outcome
        assert all(0.0 <= value <= 1.0 for value in posteriors.values())


class TestEONScenario:
    """The synthetic real-world experiment end to end (reduced scope)."""

    def test_detector_flags_a_wrong_editor_match(self):
        scenario = build_eon_network()
        # The EON graph is dense (30 mappings over 6 peers): keep the cycle
        # evidence only, as the paper advises for dense neighbourhoods.
        assessor = MappingQualityAssessor(
            scenario.network, delta=0.1, ttl=3, include_parallel_paths=False
        )
        # ref101 probes its neighbourhood for its own Editor attribute.  Its
        # mapping to Karlsruhe wrongly matches Editor onto Edition; the
        # negative cycle evidence gathered locally pushes that mapping down.
        local = assessor.assess_local("ref101", "Editor")
        assert scenario.is_correct("ref101->karlsruhe", "Editor") is False
        assert local["ref101->karlsruhe"] < 0.5
        # A correct correspondence for the same attribute stays above 0.5.
        assert scenario.is_correct("ref101->mit-bibtex", "Editor") is True
        assert local["ref101->mit-bibtex"] > 0.5


class TestPriorKnowledgeIntegration:
    def test_expert_pinned_prior_protects_a_mapping(self):
        network = intro_example_network(with_records=False)
        priors = PriorBeliefStore()
        # An expert validated p2->p3; its prior is pinned at (nearly) one.
        priors.set_prior("p2->p3", "Creator", 0.99, pinned=True)
        assessor = MappingQualityAssessor(network, priors=priors, delta=0.1, ttl=4)
        assessment = assessor.assess_attribute("Creator")
        assert assessment.posteriors["p2->p3"] > 0.9
        assert assessment.posteriors["p2->p4"] < 0.5
