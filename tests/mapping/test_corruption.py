"""Unit tests for mapping error injection."""

import random

import pytest

from repro.exceptions import GenerationError
from repro.mapping.corruption import corrupt_correspondence, corrupt_mapping, drop_correspondences
from repro.mapping.correspondence import Correspondence
from repro.mapping.mapping import Mapping
from repro.schema.schema import Schema


@pytest.fixture
def target_schema():
    return Schema("p3", ["Creator", "Title", "Subject", "CreatedOn"])


@pytest.fixture
def mapping():
    return Mapping.from_pairs(
        "p2",
        "p3",
        {"Creator": "Creator", "Title": "Title", "Subject": "Subject"},
        is_correct=True,
    )


class TestCorruptCorrespondence:
    def test_changes_target_and_label(self, target_schema):
        c = Correspondence("Creator", "Creator", is_correct=True)
        corrupted = corrupt_correspondence(c, target_schema, random.Random(0))
        assert corrupted.target_attribute != "Creator"
        assert corrupted.is_correct is False
        assert corrupted.source_attribute == "Creator"

    def test_requires_alternative_target(self):
        c = Correspondence("A", "OnlyOne")
        schema = Schema("t", ["OnlyOne"])
        with pytest.raises(GenerationError):
            corrupt_correspondence(c, schema, random.Random(0))


class TestCorruptMapping:
    def test_explicit_attribute_selection(self, mapping, target_schema):
        corrupted, report = corrupt_mapping(
            mapping, target_schema, attributes=["Creator"], rng=random.Random(1)
        )
        assert report.corrupted_attributes == ("Creator",)
        assert corrupted.is_correct_for("Creator") is False
        assert corrupted.is_correct_for("Title") is True
        # original untouched
        assert mapping.is_correct_for("Creator") is True

    def test_error_rate_zero_corrupts_nothing(self, mapping, target_schema):
        corrupted, report = corrupt_mapping(mapping, target_schema, error_rate=0.0)
        assert report.error_count == 0
        assert corrupted.erroneous_attributes() == ()

    def test_error_rate_one_corrupts_everything(self, mapping, target_schema):
        corrupted, report = corrupt_mapping(
            mapping, target_schema, error_rate=1.0, rng=random.Random(2)
        )
        assert report.error_count == 3
        assert set(corrupted.erroneous_attributes()) == {"Creator", "Title", "Subject"}

    def test_unknown_attribute_selection_rejected(self, mapping, target_schema):
        with pytest.raises(GenerationError):
            corrupt_mapping(mapping, target_schema, attributes=["Nope"])

    def test_both_modes_rejected(self, mapping, target_schema):
        with pytest.raises(GenerationError):
            corrupt_mapping(mapping, target_schema, error_rate=0.5, attributes=["Creator"])

    def test_bad_error_rate_rejected(self, mapping, target_schema):
        with pytest.raises(GenerationError):
            corrupt_mapping(mapping, target_schema, error_rate=1.5)

    def test_deterministic_given_seed(self, mapping, target_schema):
        first, _ = corrupt_mapping(mapping, target_schema, error_rate=0.5, rng=random.Random(42))
        second, _ = corrupt_mapping(mapping, target_schema, error_rate=0.5, rng=random.Random(42))
        assert first.as_renaming() == second.as_renaming()


class TestDropCorrespondences:
    def test_dropped_attributes_removed(self, mapping):
        reduced, report = drop_correspondences(mapping, ["Creator"])
        assert not reduced.maps_attribute("Creator")
        assert reduced.maps_attribute("Title")
        assert report.dropped_attributes == ("Creator",)

    def test_dropping_unknown_attribute_is_noop(self, mapping):
        reduced, report = drop_correspondences(mapping, ["Nope"])
        assert len(reduced) == len(mapping)
        assert report.dropped_attributes == ()
