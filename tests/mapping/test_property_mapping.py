"""Property-based tests for mapping composition invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.composition import POSITIVE, apply_chain, round_trip_outcome
from repro.mapping.mapping import Mapping

attribute_names = st.lists(
    st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=6),
    min_size=2,
    max_size=8,
    unique=True,
)


def identity_chain(attributes, peer_count):
    peers = [f"p{i}" for i in range(1, peer_count + 1)]
    chain = []
    for first, second in zip(peers, peers[1:] + peers[:1]):
        chain.append(Mapping.from_pairs(first, second, {a: a for a in attributes}))
    return chain


@given(attribute_names, st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_identity_cycle_always_gives_positive_feedback(attributes, peer_count):
    chain = identity_chain(attributes, peer_count)
    for attribute in attributes:
        assert round_trip_outcome(chain, attribute) == POSITIVE


@given(attribute_names, st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_apply_chain_image_is_target_attribute_or_none(attributes, peer_count):
    chain = identity_chain(attributes, peer_count)
    for attribute in attributes:
        image = apply_chain(chain, attribute)
        assert image == attribute


@given(attribute_names, st.data())
@settings(max_examples=40, deadline=None)
def test_permutation_mappings_compose_to_permutation(attributes, data):
    """A cycle of permutation mappings maps the attribute set onto itself."""
    permutation = data.draw(st.permutations(attributes))
    forward = Mapping.from_pairs("a", "b", dict(zip(attributes, permutation)))
    backward = Mapping.from_pairs("b", "a", dict(zip(permutation, attributes)))
    for attribute in attributes:
        assert apply_chain([forward, backward], attribute) == attribute
        assert round_trip_outcome([forward, backward], attribute) == POSITIVE


@given(attribute_names)
@settings(max_examples=30, deadline=None)
def test_reversed_mapping_inverts_identity(attributes):
    mapping = Mapping.from_pairs("a", "b", {x: x for x in attributes})
    reversed_mapping = mapping.reversed()
    for attribute in attributes:
        assert reversed_mapping.apply(mapping.apply(attribute)) == attribute
