"""Unit tests for mapping composition and round-trip outcomes."""

import pytest

from repro.exceptions import MappingCompositionError
from repro.mapping.composition import (
    NEGATIVE,
    NEUTRAL,
    POSITIVE,
    apply_chain,
    compose,
    parallel_paths_outcome,
    round_trip_outcome,
    validate_chain,
)
from repro.mapping.mapping import Mapping


def identity(source, target, attributes=("Creator", "Title")):
    return Mapping.from_pairs(source, target, {a: a for a in attributes})


@pytest.fixture
def correct_cycle():
    return [identity("p1", "p2"), identity("p2", "p3"), identity("p3", "p1")]


@pytest.fixture
def faulty_cycle():
    faulty = Mapping.from_pairs("p2", "p3", {"Creator": "Title", "Title": "Title"})
    return [identity("p1", "p2"), faulty, identity("p3", "p1")]


class TestValidateChain:
    def test_valid_chain_passes(self, correct_cycle):
        validate_chain(correct_cycle)

    def test_broken_chain_rejected(self):
        with pytest.raises(MappingCompositionError):
            validate_chain([identity("p1", "p2"), identity("p3", "p4")])

    def test_empty_chain_rejected(self):
        with pytest.raises(MappingCompositionError):
            validate_chain([])


class TestApplyChain:
    def test_identity_chain_preserves_attribute(self, correct_cycle):
        assert apply_chain(correct_cycle, "Creator") == "Creator"

    def test_faulty_chain_redirects_attribute(self, faulty_cycle):
        assert apply_chain(faulty_cycle, "Creator") == "Title"

    def test_missing_correspondence_returns_none(self):
        partial = Mapping.from_pairs("p2", "p3", {"Title": "Title"})
        chain = [identity("p1", "p2"), partial]
        assert apply_chain(chain, "Creator") is None


class TestRoundTripOutcome:
    def test_positive_for_correct_cycle(self, correct_cycle):
        assert round_trip_outcome(correct_cycle, "Creator") == POSITIVE

    def test_negative_for_faulty_cycle(self, faulty_cycle):
        assert round_trip_outcome(faulty_cycle, "Creator") == NEGATIVE

    def test_neutral_when_attribute_lost(self):
        partial = Mapping.from_pairs("p2", "p3", {"Title": "Title"})
        cycle = [identity("p1", "p2"), partial, identity("p3", "p1")]
        assert round_trip_outcome(cycle, "Creator") == NEUTRAL

    def test_compensating_errors_look_positive(self):
        """Two errors that cancel out produce (misleading) positive feedback —
        the Δ case of the paper's CPT."""
        swap_a = Mapping.from_pairs("p1", "p2", {"Creator": "Title", "Title": "Creator"})
        swap_b = Mapping.from_pairs("p2", "p3", {"Creator": "Title", "Title": "Creator"})
        cycle = [swap_a, swap_b, identity("p3", "p1")]
        assert round_trip_outcome(cycle, "Creator") == POSITIVE

    def test_non_cycle_rejected(self):
        with pytest.raises(MappingCompositionError):
            round_trip_outcome([identity("p1", "p2"), identity("p2", "p3")], "Creator")


class TestParallelPathsOutcome:
    def test_positive_when_images_agree(self):
        first = [identity("p1", "p2"), identity("p2", "p4")]
        second = [identity("p1", "p4")]
        assert parallel_paths_outcome(first, second, "Creator") == POSITIVE

    def test_negative_when_images_differ(self):
        first = [identity("p1", "p2"), Mapping.from_pairs("p2", "p4", {"Creator": "Title", "Title": "Title"})]
        second = [identity("p1", "p4")]
        assert parallel_paths_outcome(first, second, "Creator") == NEGATIVE

    def test_neutral_when_one_path_loses_attribute(self):
        first = [Mapping.from_pairs("p1", "p4", {"Title": "Title"})]
        second = [identity("p1", "p4")]
        assert parallel_paths_outcome(first, second, "Creator") == NEUTRAL

    def test_mismatched_sources_rejected(self):
        with pytest.raises(MappingCompositionError):
            parallel_paths_outcome([identity("p1", "p4")], [identity("p2", "p4")], "Creator")

    def test_mismatched_destinations_rejected(self):
        with pytest.raises(MappingCompositionError):
            parallel_paths_outcome([identity("p1", "p4")], [identity("p1", "p3")], "Creator")


class TestCompose:
    def test_compose_chain_into_single_mapping(self):
        chain = [identity("p1", "p2"), identity("p2", "p3")]
        composite = compose(chain)
        assert composite.source == "p1"
        assert composite.target == "p3"
        assert composite.apply("Creator") == "Creator"

    def test_compose_drops_lost_attributes(self):
        chain = [identity("p1", "p2"), Mapping.from_pairs("p2", "p3", {"Title": "Title"})]
        composite = compose(chain)
        assert not composite.maps_attribute("Creator")
        assert composite.apply("Title") == "Title"

    def test_compose_propagates_error_labels(self):
        faulty = Mapping.from_pairs(
            "p2", "p3", {"Creator": "Title", "Title": "Title"}, is_correct=False
        )
        composite = compose([identity("p1", "p2"), faulty])
        assert composite.is_correct_for("Creator") is False

    def test_compose_full_cycle_rejected(self, correct_cycle):
        with pytest.raises(MappingCompositionError):
            compose(correct_cycle)
