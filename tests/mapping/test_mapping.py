"""Unit tests for repro.mapping.mapping."""

import pytest

from repro.exceptions import MappingError
from repro.mapping.correspondence import Correspondence
from repro.mapping.mapping import Mapping, MappingIdentifier


@pytest.fixture
def mapping():
    return Mapping.from_pairs(
        "p2", "p3", {"Creator": "Creator", "Title": "Name"}, is_correct=True
    )


class TestIdentity:
    def test_name_format(self, mapping):
        assert mapping.name == "p2->p3"
        assert mapping.source == "p2"
        assert mapping.target == "p3"

    def test_label_in_name(self):
        labelled = Mapping("p2", "p3", label="alt")
        assert labelled.name == "p2->p3#alt"

    def test_identifier_ordering(self):
        assert MappingIdentifier("a", "b") < MappingIdentifier("b", "a")

    def test_same_endpoints_rejected(self):
        with pytest.raises(MappingError):
            Mapping("p1", "p1")

    def test_empty_endpoints_rejected(self):
        with pytest.raises(MappingError):
            Mapping("", "p2")


class TestCorrespondences:
    def test_apply_returns_target_attribute(self, mapping):
        assert mapping.apply("Creator") == "Creator"
        assert mapping.apply("Title") == "Name"

    def test_apply_missing_returns_none(self, mapping):
        assert mapping.apply("Subject") is None

    def test_maps_attribute(self, mapping):
        assert mapping.maps_attribute("Creator")
        assert not mapping.maps_attribute("Subject")

    def test_duplicate_source_attribute_rejected(self, mapping):
        with pytest.raises(MappingError):
            mapping.add(Correspondence("Creator", "Painter"))

    def test_as_renaming(self, mapping):
        assert mapping.as_renaming() == {"Creator": "Creator", "Title": "Name"}

    def test_len_and_iter(self, mapping):
        assert len(mapping) == 2
        assert {c.source_attribute for c in mapping} == {"Creator", "Title"}

    def test_correspondence_for(self, mapping):
        assert mapping.correspondence_for("Title").target_attribute == "Name"
        assert mapping.correspondence_for("Nope") is None

    def test_source_attributes(self, mapping):
        assert mapping.source_attributes == ("Creator", "Title")


class TestGroundTruthHelpers:
    def test_erroneous_attributes_empty_when_all_correct(self, mapping):
        assert mapping.erroneous_attributes() == ()

    def test_erroneous_attributes_lists_wrong_ones(self):
        m = Mapping(
            "a",
            "b",
            correspondences=[
                Correspondence("X", "X", is_correct=True),
                Correspondence("Y", "Z", is_correct=False),
            ],
        )
        assert m.erroneous_attributes() == ("Y",)

    def test_is_correct_for(self, mapping):
        assert mapping.is_correct_for("Creator") is True
        assert mapping.is_correct_for("Missing") is None


class TestReversal:
    def test_reversed_swaps_endpoints_and_correspondences(self, mapping):
        reversed_mapping = mapping.reversed()
        assert reversed_mapping.source == "p3"
        assert reversed_mapping.target == "p2"
        assert reversed_mapping.apply("Name") == "Title"

    def test_from_pairs_accepts_tuples(self):
        m = Mapping.from_pairs("a", "b", [("X", "Y")])
        assert m.apply("X") == "Y"
