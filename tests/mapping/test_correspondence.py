"""Unit tests for repro.mapping.correspondence."""

import pytest

from repro.exceptions import MappingError
from repro.mapping.correspondence import Correspondence


class TestCorrespondence:
    def test_defaults(self):
        c = Correspondence("Creator", "Author")
        assert c.confidence == 1.0
        assert c.is_correct is None
        assert c.provenance == "manual"

    def test_empty_attributes_rejected(self):
        with pytest.raises(MappingError):
            Correspondence("", "Author")
        with pytest.raises(MappingError):
            Correspondence("Creator", "")

    def test_confidence_range_enforced(self):
        with pytest.raises(MappingError):
            Correspondence("A", "B", confidence=1.5)
        with pytest.raises(MappingError):
            Correspondence("A", "B", confidence=-0.1)

    def test_reversed_swaps_endpoints(self):
        c = Correspondence("Creator", "Author", confidence=0.8, is_correct=True)
        reversed_c = c.reversed()
        assert reversed_c.source_attribute == "Author"
        assert reversed_c.target_attribute == "Creator"
        assert reversed_c.confidence == 0.8
        assert reversed_c.is_correct is True

    def test_with_target_changes_target_and_label(self):
        c = Correspondence("Creator", "Author", is_correct=True)
        wrong = c.with_target("CreatedOn", is_correct=False)
        assert wrong.source_attribute == "Creator"
        assert wrong.target_attribute == "CreatedOn"
        assert wrong.is_correct is False
        # original unchanged (frozen dataclass)
        assert c.target_attribute == "Author"

    def test_str(self):
        assert str(Correspondence("A", "B")) == "A -> B"

    def test_equality(self):
        assert Correspondence("A", "B") == Correspondence("A", "B")
        assert Correspondence("A", "B") != Correspondence("A", "C")
