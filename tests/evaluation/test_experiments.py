"""Tests for the per-figure experiment runners (shapes of the paper's results).

These are the slowest tests in the suite; they use reduced parameter grids
compared to the benchmark harness but check the same qualitative claims.
"""

import pytest

from repro.evaluation.experiments import (
    run_assessor_amortization,
    run_baseline_comparison,
    run_convergence,
    run_cycle_length,
    run_embedded_throughput,
    run_fault_tolerance,
    run_intro_example,
    run_real_world,
    run_relative_error,
    run_schedule_comparison,
)


class TestIntroExample:
    def test_reproduces_section_45(self):
        result = run_intro_example()
        assert result.converged
        # Paper (exact): 0.59 / 0.30 — the embedded loopy estimates are close.
        assert result.posteriors["p2->p3"] == pytest.approx(0.59, abs=0.06)
        assert result.posteriors["p2->p4"] == pytest.approx(0.30, abs=0.06)
        # Updated priors move towards 0.55 / 0.40.
        assert result.updated_priors["p2->p3"] > 0.5
        assert result.updated_priors["p2->p4"] < 0.5
        # Routing: the faulty mapping is blocked and false positives vanish.
        assert "p2->p4" in result.blocked_mappings
        assert result.standard_false_positive_count >= 1
        assert result.aware_false_positive_count == 0


class TestConvergence:
    def test_figure7_shape(self):
        result = run_convergence()
        assert result.converged
        # "converges to approximate results in ten iterations usually"
        assert result.iterations <= 15
        # Correct mappings end high, the faulty one ends low.
        assert result.final_posteriors["p2->p4"] < 0.3
        assert result.final_posteriors["p2->p3"] > 0.7
        # History has one entry per iteration for each mapping.
        assert len(result.history["p2->p4"]) == result.iterations


class TestRelativeError:
    def test_figure9_shape(self):
        result = run_relative_error(extra_peer_range=range(0, 4))
        errors = dict(result.points)
        # Error is largest for the shortest cycles and never reaches ~6%.
        assert errors[4] == max(errors.values())
        assert result.max_error < 0.065
        assert errors[min(errors)] > errors[max(errors)]


class TestCycleLength:
    def test_figure10_shape(self):
        result = run_cycle_length(lengths=(2, 5, 10, 20), deltas=(0.01, 0.1))
        for delta, points in result.series.items():
            values = dict(points)
            assert values[2] > values[5] > values[10] - 1e-9
            assert abs(values[20] - 0.5) < 0.02
        # Smaller Δ keeps evidence informative for longer cycles.
        assert dict(result.series[0.01])[10] > dict(result.series[0.1])[10]


class TestFaultTolerance:
    def test_figure11_shape(self):
        result = run_fault_tolerance(
            send_probabilities=(1.0, 0.5, 0.2), repetitions=3, max_rounds=400
        )
        iterations = {p: i for p, i, _ in result.points}
        convergence = {p: c for p, _, c in result.points}
        # Always converges, even with 80% of messages dropped...
        assert all(c == 1.0 for c in convergence.values())
        # ...but needs more iterations the more messages are lost.
        assert iterations[0.2] > iterations[0.5] > iterations[1.0]


class TestRealWorld:
    @pytest.fixture(scope="class")
    def result(self):
        return run_real_world(thetas=(0.2, 0.5, 0.8))

    def test_figure12_scale(self, result):
        assert 300 <= result.correspondence_count <= 500
        assert 40 <= result.erroneous_count <= 120

    def test_figure12_precision_shape(self, result):
        # High precision at low θ; still high (but not better) at large θ.
        # The exact ordering between nearby θ values is subject to
        # small-sample noise, hence the tolerance.
        assert result.precision_at(0.2) >= 0.8
        assert result.precision_at(0.2) >= result.precision_at(0.8) - 0.1
        # Far better than random guessing (error rate ~17%).
        random_precision = result.erroneous_count / result.correspondence_count
        assert result.precision_at(0.8) > random_precision * 2

    def test_posteriors_cover_scored_pairs(self, result):
        assert len(result.posteriors) > 0
        for key in result.posteriors:
            assert key in result.scenario.ground_truth


class TestAblations:
    def test_baseline_comparison(self):
        result = run_baseline_comparison()
        # Probabilistic scheme flags exactly the faulty mapping...
        assert result.probabilistic_flagged == ("p2->p4",)
        assert result.probabilistic.precision == 1.0
        assert result.probabilistic.recall == 1.0
        # ...while the Chatty-Web heuristic drags innocent mappings with it.
        assert len(result.baseline_flagged) > 1
        assert result.baseline.precision < result.probabilistic.precision

    def test_schedule_comparison(self):
        result = run_schedule_comparison(query_count=40)
        assert result.periodic_rounds > 0
        assert result.lazy_rounds > 0
        assert result.periodic_messages > 0
        # Both schedules identify the same faulty mapping.
        assert result.periodic_posteriors["p2->p4"] < 0.5
        assert result.lazy_posteriors["p2->p4"] < 0.5


class TestEmbeddedThroughput:
    @pytest.mark.parametrize("send_probability", [1.0, 0.7])
    def test_backends_agree_and_report_rates(self, send_probability):
        result = run_embedded_throughput(
            peer_counts=(8,),
            rounds=10,
            repeats=1,
            send_probability=send_probability,
        )
        point = result.point_for(8)
        assert point.rounds == 10
        assert point.feedback_count > 0
        assert point.remote_messages_per_round > 0
        assert point.max_posterior_difference <= 1e-12
        assert point.dict_rounds_per_second > 0
        assert point.array_rounds_per_second > 0

    def test_unknown_peer_count_raises(self):
        result = run_embedded_throughput(peer_counts=(8,), rounds=2, repeats=1)
        with pytest.raises(KeyError):
            result.point_for(999)


class TestAssessorAmortization:
    def test_probe_once_and_identical_posteriors(self):
        result = run_assessor_amortization(peer_count=16, attribute_count=6, ttl=3)
        assert result.attribute_count >= 5
        assert result.cached_probe_count == 1
        assert result.uncached_probe_count == result.attribute_count
        assert result.probe_amortization == result.attribute_count
        assert result.max_posterior_difference == 0.0
