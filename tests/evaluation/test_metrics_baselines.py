"""Unit tests for detection metrics, baselines and reporting helpers."""

import pytest

from repro.evaluation.baselines import chatty_web_baseline, random_guess_baseline
from repro.evaluation.metrics import (
    ConfusionCounts,
    DetectionMetrics,
    precision_curve,
    score_detection,
)
from repro.evaluation.reporting import format_comparison, format_series, format_table
from repro.evaluation.convergence import iterations_to_converge, trajectory_stats
from repro.exceptions import EvaluationError
from repro.generators.paper import intro_example_feedbacks


class TestConfusionCounts:
    def test_derived_counts(self):
        counts = ConfusionCounts(true_positives=3, false_positives=1, false_negatives=2, true_negatives=4)
        assert counts.flagged == 4
        assert counts.actual_errors == 5
        assert counts.total == 10


class TestDetectionMetrics:
    def test_from_counts(self):
        counts = ConfusionCounts(3, 1, 2, 4)
        metrics = DetectionMetrics.from_counts(counts)
        assert metrics.precision == pytest.approx(0.75)
        assert metrics.recall == pytest.approx(0.6)
        assert metrics.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    def test_zero_flagged_gives_zero_precision(self):
        metrics = DetectionMetrics.from_counts(ConfusionCounts(0, 0, 3, 5))
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0


class TestScoreDetection:
    GROUND_TRUTH = {
        ("a->b", "X"): False,
        ("b->c", "X"): True,
        ("c->d", "X"): True,
        ("d->e", "X"): False,
    }

    def test_perfect_detector(self):
        posteriors = {
            ("a->b", "X"): 0.1,
            ("b->c", "X"): 0.9,
            ("c->d", "X"): 0.8,
            ("d->e", "X"): 0.2,
        }
        metrics = score_detection(posteriors, self.GROUND_TRUTH, theta=0.5)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_over_eager_detector_loses_precision(self):
        posteriors = {key: 0.1 for key in self.GROUND_TRUTH}
        metrics = score_detection(posteriors, self.GROUND_TRUTH, theta=0.5)
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == 1.0

    def test_missing_posterior_counts_as_not_flagged(self):
        posteriors = {("a->b", "X"): 0.1}
        metrics = score_detection(posteriors, self.GROUND_TRUTH, theta=0.5)
        assert metrics.counts.false_negatives == 1
        assert metrics.recall == pytest.approx(0.5)

    def test_empty_ground_truth_rejected(self):
        with pytest.raises(EvaluationError):
            score_detection({}, {}, theta=0.5)

    def test_invalid_theta_rejected(self):
        with pytest.raises(EvaluationError):
            score_detection({}, self.GROUND_TRUTH, theta=1.5)

    def test_precision_curve_covers_all_thetas(self):
        posteriors = {key: 0.3 for key in self.GROUND_TRUTH}
        curve = precision_curve(posteriors, self.GROUND_TRUTH, thetas=(0.1, 0.5, 0.9))
        assert [theta for theta, _ in curve] == [0.1, 0.5, 0.9]


class TestBaselines:
    def test_chatty_web_disqualifies_every_mapping_in_negative_structures(self):
        verdicts = chatty_web_baseline(intro_example_feedbacks())
        assert verdicts[("p2->p4", "Creator")] == 0.0
        # The paper's point: the heuristic also disqualifies innocent
        # mappings that happen to sit on a negative cycle.
        assert verdicts[("p1->p2", "Creator")] == 0.0
        assert verdicts[("p2->p3", "Creator")] == 0.0

    def test_random_guess_baseline_is_deterministic_per_seed(self):
        keys = [("a->b", "X"), ("b->c", "X"), ("c->d", "X")]
        assert random_guess_baseline(keys, seed=1) == random_guess_baseline(keys, seed=1)

    def test_random_guess_flag_probability_extremes(self):
        keys = [("a->b", "X"), ("b->c", "X")]
        assert set(random_guess_baseline(keys, flag_probability=1.0).values()) == {0.0}
        assert set(random_guess_baseline(keys, flag_probability=0.0).values()) == {1.0}


class TestConvergenceHelpers:
    def test_iterations_to_converge(self):
        assert iterations_to_converge([0.5, 0.7, 0.8, 0.8001, 0.8001], tolerance=1e-2) == 3
        assert iterations_to_converge([0.5], tolerance=1e-3) == 1

    def test_never_settling_trajectory(self):
        assert iterations_to_converge([0.1, 0.9, 0.1, 0.9], tolerance=1e-3) == 4

    def test_empty_trajectory_rejected(self):
        with pytest.raises(EvaluationError):
            iterations_to_converge([])

    def test_trajectory_stats(self):
        stats = trajectory_stats([0.5, 0.6, 0.65, 0.66])
        assert stats.iterations == 4
        assert stats.final_value == pytest.approx(0.66)
        assert stats.largest_step == pytest.approx(0.1)
        assert stats.monotonic


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("theta", "precision"), [(0.1, 1.0), (0.5, 0.9)], title="Fig 12")
        lines = table.splitlines()
        assert lines[0] == "Fig 12"
        assert "theta" in lines[1]
        assert "0.900" in table

    def test_format_series(self):
        series = format_series("convergence", [(1, 0.5)], x_label="iter", y_label="P")
        assert "iter" in series
        assert "0.500" in series

    def test_format_comparison(self):
        line = format_comparison("posterior", 0.59, 0.56, note="loopy estimate")
        assert "paper=0.590" in line
        assert "measured=0.560" in line
        assert "loopy estimate" in line
