"""Unit tests for the batched multi-attribute assessment engine."""

import numpy as np
import pytest

from repro.core.batched import (
    AssessmentLane,
    AssessmentPlan,
    BatchedEmbeddedMessagePassing,
    BlockedEmbeddedMessagePassing,
    compile_assessment_plan,
)
from repro.constants import COUNT_KERNEL_MIN_ARITY, MAX_COMPILED_ARITY
from repro.core.embedded import EmbeddedOptions
from repro.core.feedback import Feedback, FeedbackKind, StructureKind
from repro.core.quality import MappingQualityAssessor
from repro.exceptions import ConvergenceError, FactorGraphError, FeedbackError
from repro.generators.paper import intro_example_network
from repro.generators.scenarios import generate_scenario


def _assessor_pair(network, **kwargs):
    batched = MappingQualityAssessor(network, **kwargs)
    sequential = MappingQualityAssessor(network, use_batched_engine=False, **kwargs)
    return batched, sequential


def _worst_difference(batched_assessments, sequential_assessments):
    worst = 0.0
    for attribute, sequential in sequential_assessments.items():
        batched = batched_assessments[attribute]
        assert set(batched.posteriors) == set(sequential.posteriors)
        for name, value in sequential.posteriors.items():
            worst = max(worst, abs(batched.posteriors[name] - value))
    return worst


class TestPlanCompilation:
    def _intro_plan(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        return assessor.assessment_plan()

    def test_plan_covers_every_structure_and_mapping(self):
        plan = self._intro_plan()
        assert plan.structure_count == len(plan.identifiers)
        assert plan.structure_count > 0
        covered = {name for names in plan.structure_mappings for name in names}
        assert covered == set(plan.mapping_names)
        # Every mapping is owned by its source peer.
        for name in plan.mapping_names:
            assert plan.owners[name] == name.split("->", 1)[0]

    def test_edges_grouped_by_mapping(self):
        plan = self._intro_plan()
        # Contiguous segments: the mapping index may only change at a
        # segment start.
        changes = np.flatnonzero(plan.edge_mapping[1:] != plan.edge_mapping[:-1]) + 1
        assert set(changes).issubset(set(plan.segment_starts.tolist()))
        assert plan.segment_starts[0] == 0
        assert len(plan.segment_starts) == plan.mapping_count

    def test_transmissions_cross_owners_only(self):
        plan = self._intro_plan()
        for src, feedback_index in zip(plan.tx_src, plan.tx_feedback):
            sender_mapping = plan.mapping_names[plan.edge_mapping[src]]
            names = plan.structure_mappings[feedback_index]
            assert sender_mapping in names

    def test_arities_beyond_dense_limit_compile_to_count_buckets(self):
        # Historically arity > MAX_COMPILED_ARITY was rejected (the
        # "arity-25 compilation cliff"); long structures now compile into
        # count-space buckets with O(arity) count tensors instead of the
        # dense (2,)**arity ones.
        names = tuple(f"p{i}->p{i + 1}" for i in range(30))
        plan = compile_assessment_plan([("f1", names)])
        (batch,) = plan.batches
        assert batch.arity == 30 > MAX_COMPILED_ARITY
        assert batch.use_count_kernel
        assert batch.incorrect_counts.shape == (31,)

    def test_count_kernel_crossover_buckets(self):
        # One short and one crossover-length structure: the short bucket
        # stays dense, the long one switches to the count kernel.
        short = tuple(f"p{i}->p{i + 1}" for i in range(3))
        long_names = tuple(
            f"q{i}->q{i + 1}" for i in range(COUNT_KERNEL_MIN_ARITY)
        )
        plan = compile_assessment_plan([("f1", short), ("f2", long_names)])
        by_arity = {batch.arity: batch for batch in plan.batches}
        assert not by_arity[3].use_count_kernel
        assert by_arity[3].incorrect_counts.shape == (2,) * 3
        assert by_arity[COUNT_KERNEL_MIN_ARITY].use_count_kernel
        assert by_arity[COUNT_KERNEL_MIN_ARITY].incorrect_counts.shape == (
            COUNT_KERNEL_MIN_ARITY + 1,
        )

    def test_structures_need_two_mappings(self):
        with pytest.raises(FeedbackError):
            compile_assessment_plan([("f1", ("a->b",))])


class TestBatchedSequentialParity:
    """The batched engine must replay the sequential per-attribute runs."""

    def test_lossless_parity_on_intro_network(self):
        network = intro_example_network(with_records=False)
        attributes = network.attribute_universe()
        batched, sequential = _assessor_pair(network, delta=0.1, ttl=4, seed=0)
        b = batched.assess_attributes(attributes)
        s = sequential.assess_attributes(attributes)
        assert _worst_difference(b, s) <= 1e-9
        for attribute in attributes:
            assert b[attribute].converged == s[attribute].converged
            assert b[attribute].iterations == s[attribute].iterations
            assert b[attribute].unmappable == s[attribute].unmappable

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lossy_parity_across_seeds(self, seed):
        """Satellite: batched-vs-sequential parity under lossy transport."""
        network = intro_example_network(with_records=False)
        attributes = network.attribute_universe()
        batched, sequential = _assessor_pair(
            network, delta=0.1, ttl=4, seed=seed, send_probability=0.6
        )
        b = batched.assess_attributes(attributes)
        s = sequential.assess_attributes(attributes)
        assert _worst_difference(b, s) <= 1e-9
        for attribute in attributes:
            rb, rs = b[attribute].result, s[attribute].result
            assert (rb is None) == (rs is None)
            if rb is None:
                continue
            # Identical per-attribute rng streams: same attempts, same drops.
            assert rb.messages_attempted == rs.messages_attempted
            assert rb.messages_delivered == rs.messages_delivered
            assert rb.iterations == rs.iterations

    def test_lossy_parity_on_generated_scenario(self):
        scenario = generate_scenario(
            topology="scale-free",
            peer_count=16,
            attribute_count=8,
            error_rate=0.2,
            seed=7,
        )
        network = scenario.network
        attributes = network.attribute_universe()
        batched, sequential = _assessor_pair(
            network,
            delta=None,
            ttl=3,
            include_parallel_paths=False,
            seed=5,
            send_probability=0.7,
        )
        b = batched.assess_attributes(attributes)
        s = sequential.assess_attributes(attributes)
        assert _worst_difference(b, s) <= 1e-9

    def test_history_parity(self):
        network = intro_example_network(with_records=False)
        batched, sequential = _assessor_pair(network, delta=0.1, ttl=4, seed=0)
        b = batched.assess_attributes(["Creator"])["Creator"]
        s = sequential.assess_attributes(["Creator"])["Creator"]
        assert b.result is not None and s.result is not None
        assert len(b.result.history) == len(s.result.history)
        for batched_round, sequential_round in zip(
            b.result.history, s.result.history
        ):
            assert batched_round.keys() == sequential_round.keys()
            for name, value in sequential_round.items():
                assert batched_round[name] == pytest.approx(value, abs=1e-9)

    def test_attribute_without_informative_feedback_gets_none_result(self):
        network = intro_example_network(with_records=False)
        # CreatedOn exists only at p4 — no cycle pushes it all the way
        # around, so every structure is neutral for it.
        batched, sequential = _assessor_pair(network, delta=0.1, ttl=4)
        b = batched.assess_attributes(["CreatedOn"])["CreatedOn"]
        s = sequential.assess_attributes(["CreatedOn"])["CreatedOn"]
        assert (b.result is None) == (s.result is None)
        assert b.posteriors == s.posteriors


class TestPlanReuse:
    def test_plan_compiled_once_across_attributes_and_em_rounds(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        for _ in range(3):
            assessor.assess_all_attributes()
            assessor.update_priors()
        assert assessor.plan_compile_count == 1
        assert assessor.structure_cache.statistics.probes == 1

    def test_remove_mapping_then_batched_reassessment(self):
        """Satellite: cache invalidation on remove_mapping feeds the batched
        engine a consistent, freshly compiled plan."""
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        before = assessor.assess_all_attributes()
        assert "p2->p4" in before["Creator"].posteriors

        network.remove_mapping("p2->p4")
        after = assessor.assess_all_attributes()
        assert assessor.plan_compile_count == 2
        # The removed mapping disappears from the inference problem…
        assert "p2->p4" not in after["Creator"].posteriors
        # …and the batched posteriors still match a sequential assessor
        # built fresh on the mutated network.
        fresh = MappingQualityAssessor(
            network, delta=0.1, ttl=4, seed=0, use_batched_engine=False
        ).assess_all_attributes()
        assert _worst_difference(after, fresh) <= 1e-9

    def test_invalidate_clears_plan(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        assessor.assess_all_attributes()
        assessor.invalidate()
        assessor.assess_all_attributes()
        assert assessor.plan_compile_count == 2


class TestEngineValidation:
    def _plan_and_evidence(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        plan = assessor.assessment_plan()
        evidence = assessor.structure_cache.evidence_for("Creator")
        return plan, evidence

    def test_misaligned_feedback_set_rejected(self):
        plan, evidence = self._plan_and_evidence()
        with pytest.raises(FeedbackError):
            BatchedEmbeddedMessagePassing(
                plan, {"Creator": evidence.feedbacks[:-1]}
            )

    def test_invalid_delta_rejected(self):
        plan, evidence = self._plan_and_evidence()
        with pytest.raises(FeedbackError):
            BatchedEmbeddedMessagePassing(
                plan, {"Creator": evidence.feedbacks}, deltas=1.5
            )

    def test_missing_delta_for_neutral_attribute_tolerated(self):
        """A deltas dict only needs entries for attributes with informative
        evidence; all-neutral lanes construct fine and yield None results."""
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        plan = assessor.assessment_plan()
        neutral = assessor.structure_cache.evidence_for("Unmapped").feedbacks
        assert all(not feedback.is_informative for feedback in neutral)
        engine = BatchedEmbeddedMessagePassing(
            plan,
            {
                "Creator": assessor.structure_cache.evidence_for(
                    "Creator"
                ).feedbacks,
                # "Unmapped" exists in no schema: neutral everywhere, and
                # no Δ supplied for it.
                "Unmapped": neutral,
            },
            deltas={"Creator": 0.1},
        )
        results = engine.run()
        assert results["Unmapped"] is None
        assert results["Creator"] is not None
        with pytest.raises(FeedbackError, match="no Δ supplied"):
            BatchedEmbeddedMessagePassing(
                plan,
                {
                    "Creator": assessor.structure_cache.evidence_for(
                        "Creator"
                    ).feedbacks
                },
                deltas={},
            )

    def test_invalid_prior_rejected(self):
        plan, evidence = self._plan_and_evidence()
        with pytest.raises(FeedbackError):
            BatchedEmbeddedMessagePassing(
                plan,
                {"Creator": evidence.feedbacks},
                priors={"Creator": {"p2->p4": 2.0}},
            )

    def test_flat_mapping_keyed_priors_rejected(self):
        """The sequential engine's flat {mapping: prior} shape must not be
        silently misread as attribute-keyed (degrading every prior to 0.5)."""
        plan, evidence = self._plan_and_evidence()
        with pytest.raises(FeedbackError, match="keyed by attribute"):
            BatchedEmbeddedMessagePassing(
                plan, {"Creator": evidence.feedbacks}, priors={"p2->p4": 0.9}
            )

    def test_strict_mode_raises_on_non_convergence(self):
        plan, evidence = self._plan_and_evidence()
        engine = BatchedEmbeddedMessagePassing(
            plan,
            {"Creator": evidence.feedbacks},
            priors=0.5,
            options=EmbeddedOptions(max_rounds=1, tolerance=1e-12, strict=True),
        )
        with pytest.raises(ConvergenceError, match="Creator"):
            engine.run()

    def test_scalar_prior_and_delta_broadcast(self):
        plan, evidence = self._plan_and_evidence()
        engine = BatchedEmbeddedMessagePassing(
            plan, {"Creator": evidence.feedbacks}, priors=0.5, deltas=0.1
        )
        results = engine.run()
        assert results["Creator"] is not None
        assert results["Creator"].posteriors["p2->p4"] < 0.5
        assert results["Creator"].posteriors["p2->p3"] > 0.5


class TestAssessorFallbacks:
    def test_disabled_structure_cache_falls_back_to_sequential(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(
            network, delta=0.1, ttl=4, use_structure_cache=False
        )
        assessments = assessor.assess_attributes(["Creator", "Title"])
        assert set(assessments) == {"Creator", "Title"}
        assert assessor.plan_compile_count == 0

    def test_batched_assessments_feed_probability_queries(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        assessor.assess_all_attributes()
        assert assessor.probability("p2->p4", "Creator") < 0.5
        assert assessor.probability("p2->p3", "Creator") > 0.5
        assert assessor.flagged_mappings("Creator", theta=0.5) == ("p2->p4",)


class TestFrozenBlockCompaction:
    """Converged origins' rows leave the blocked engine's sweeps."""

    def test_per_round_work_shrinks_as_origins_converge(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        assessor.assess_local_all("Creator")
        trajectory = assessor.last_local_round_edge_counts
        assert trajectory
        assert all(a >= b for a, b in zip(trajectory, trajectory[1:]))
        assert trajectory[-1] < trajectory[0]

    def test_compaction_preserves_sequential_results_exactly(self):
        # Origins on the intro network converge at different rounds, so the
        # blocked state is compacted mid-run; every local view must still
        # equal its per-origin sequential engine (same seed) bit for bit.
        network = intro_example_network(with_records=False)
        batched = MappingQualityAssessor(
            network, delta=0.1, ttl=4, seed=0, send_probability=0.8
        )
        sequential = MappingQualityAssessor(
            network,
            delta=0.1,
            ttl=4,
            seed=0,
            send_probability=0.8,
            use_batched_engine=False,
        )
        views = batched.assess_local_all("Creator")
        assert len(batched.last_local_round_edge_counts) > 1
        for origin in network.peer_names:
            reference = sequential.assess_local(origin, "Creator")
            assert set(views[origin]) == set(reference)
            for name, value in reference.items():
                assert views[origin][name] == value

    def test_idle_lanes_are_compacted_before_the_first_round(self):
        # A lane whose evidence is entirely neutral never exchanges a
        # message; its rows must not ride the sweeps even once.
        from dataclasses import replace

        plan = compile_assessment_plan(
            [
                ("f1", ("p1->p2", "p2->p1")),
                ("f2", ("p3->p4", "p4->p3")),
            ]
        )

        def feedback(identifier, names, kind):
            return Feedback(
                identifier=identifier,
                kind=kind,
                structure=StructureKind.CYCLE,
                mapping_names=names,
                attribute="a",
            )

        live_lane = AssessmentLane(
            key="live",
            feedbacks=(
                feedback("f1", ("p1->p2", "p2->p1"), FeedbackKind.NEGATIVE),
            ),
            structure_indices=(0,),
            delta=0.1,
        )
        idle_lane = AssessmentLane(
            key="idle",
            feedbacks=(
                feedback("f2", ("p3->p4", "p4->p3"), FeedbackKind.NEUTRAL),
            ),
            structure_indices=(1,),
            delta=0.1,
        )
        engine = BlockedEmbeddedMessagePassing(plan, [live_lane, idle_lane])
        results = engine.run()
        assert results["idle"] is None
        assert results["live"] is not None
        # Only the live lane's two edge rows were ever swept.
        assert engine.round_edge_counts[0] == 2
