"""Unit tests for the feedback model and its factor encoding."""

import itertools

import numpy as np
import pytest

from repro.core.feedback import (
    Feedback,
    FeedbackKind,
    StructureKind,
    compensation_probability,
    feedback_factor,
    feedback_from_cycle,
    feedback_from_parallel_paths,
    positive_feedback_probability,
)
from repro.exceptions import FeedbackError
from repro.factorgraph.variables import CORRECT, INCORRECT, BinaryVariable
from repro.mapping.mapping import Mapping
from repro.pdms.probing import MappingCycle, ParallelPaths


def make_feedback(kind=FeedbackKind.POSITIVE, names=("p1->p2", "p2->p3", "p3->p1")):
    return Feedback(
        identifier="f1",
        kind=kind,
        structure=StructureKind.CYCLE,
        mapping_names=names,
        attribute="Creator",
    )


class TestCompensationProbability:
    def test_eleven_attributes_gives_one_tenth(self):
        assert compensation_probability(11) == pytest.approx(0.1)

    def test_two_attributes_gives_one(self):
        assert compensation_probability(2) == pytest.approx(1.0)

    def test_fewer_than_two_rejected(self):
        with pytest.raises(FeedbackError):
            compensation_probability(1)


class TestPositiveFeedbackProbability:
    def test_paper_cpt(self):
        assert positive_feedback_probability(0, 0.1) == 1.0
        assert positive_feedback_probability(1, 0.1) == 0.0
        assert positive_feedback_probability(2, 0.1) == 0.1
        assert positive_feedback_probability(5, 0.1) == 0.1

    def test_negative_count_rejected(self):
        with pytest.raises(FeedbackError):
            positive_feedback_probability(-1, 0.1)


class TestFeedback:
    def test_needs_at_least_two_mappings(self):
        with pytest.raises(FeedbackError):
            make_feedback(names=("p1->p2",))

    def test_duplicate_mappings_rejected(self):
        with pytest.raises(FeedbackError):
            make_feedback(names=("p1->p2", "p1->p2"))

    def test_informative_flags(self):
        assert make_feedback(FeedbackKind.POSITIVE).is_informative
        assert make_feedback(FeedbackKind.NEGATIVE).is_informative
        assert not make_feedback(FeedbackKind.NEUTRAL).is_informative

    def test_variable_names_follow_convention(self):
        feedback = make_feedback()
        assert feedback.variable_names() == (
            "m[p1->p2]@Creator",
            "m[p2->p3]@Creator",
            "m[p3->p1]@Creator",
        )

    def test_size(self):
        assert make_feedback().size == 3


class TestFeedbackFactor:
    def test_positive_factor_values_match_cpt(self):
        feedback = make_feedback(FeedbackKind.POSITIVE)
        factor = feedback_factor(feedback, delta=0.1)
        all_correct = {name: CORRECT for name in feedback.variable_names()}
        assert factor.value(all_correct) == pytest.approx(1.0)
        one_wrong = dict(all_correct)
        one_wrong[feedback.variable_names()[0]] = INCORRECT
        assert factor.value(one_wrong) == pytest.approx(0.0)
        two_wrong = dict(one_wrong)
        two_wrong[feedback.variable_names()[1]] = INCORRECT
        assert factor.value(two_wrong) == pytest.approx(0.1)

    def test_negative_factor_is_complement(self):
        feedback = make_feedback(FeedbackKind.NEGATIVE)
        factor = feedback_factor(feedback, delta=0.1)
        names = feedback.variable_names()
        all_correct = {name: CORRECT for name in names}
        assert factor.value(all_correct) == pytest.approx(0.0)
        one_wrong = dict(all_correct, **{names[0]: INCORRECT})
        assert factor.value(one_wrong) == pytest.approx(1.0)
        two_wrong = dict(one_wrong, **{names[1]: INCORRECT})
        assert factor.value(two_wrong) == pytest.approx(0.9)

    def test_neutral_feedback_has_no_factor(self):
        with pytest.raises(FeedbackError):
            feedback_factor(make_feedback(FeedbackKind.NEUTRAL), delta=0.1)

    def test_invalid_delta_rejected(self):
        with pytest.raises(FeedbackError):
            feedback_factor(make_feedback(), delta=1.5)

    def test_supplied_variables_must_match(self):
        feedback = make_feedback()
        wrong_variables = [BinaryVariable("a"), BinaryVariable("b"), BinaryVariable("c")]
        with pytest.raises(FeedbackError):
            feedback_factor(feedback, 0.1, wrong_variables)

    def test_factor_table_is_exhaustive(self):
        feedback = make_feedback()
        factor = feedback_factor(feedback, delta=0.2)
        total_assignments = 0
        for states in itertools.product((CORRECT, INCORRECT), repeat=3):
            assignment = dict(zip(feedback.variable_names(), states))
            value = factor.value(assignment)
            assert 0.0 <= value <= 1.0
            total_assignments += 1
        assert total_assignments == 8


class TestFeedbackFromStructures:
    def test_feedback_from_correct_cycle_is_positive(self):
        mappings = (
            Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}),
            Mapping.from_pairs("p2", "p1", {"Creator": "Creator"}),
        )
        cycle = MappingCycle(origin="p1", mappings=mappings)
        feedback = feedback_from_cycle(cycle, "Creator")
        assert feedback.kind is FeedbackKind.POSITIVE
        assert feedback.structure is StructureKind.CYCLE
        assert feedback.origin == "p1"

    def test_feedback_from_faulty_cycle_is_negative(self):
        mappings = (
            Mapping.from_pairs("p1", "p2", {"Creator": "Title", "Title": "Title"}),
            Mapping.from_pairs("p2", "p1", {"Creator": "Creator", "Title": "Title"}),
        )
        cycle = MappingCycle(origin="p1", mappings=mappings)
        assert feedback_from_cycle(cycle, "Creator").kind is FeedbackKind.NEGATIVE

    def test_feedback_from_partial_cycle_is_neutral(self):
        mappings = (
            Mapping.from_pairs("p1", "p2", {"Title": "Title"}),
            Mapping.from_pairs("p2", "p1", {"Title": "Title"}),
        )
        cycle = MappingCycle(origin="p1", mappings=mappings)
        assert feedback_from_cycle(cycle, "Creator").kind is FeedbackKind.NEUTRAL

    def test_feedback_from_parallel_paths(self):
        first = (Mapping.from_pairs("p1", "p3", {"Creator": "Creator"}),)
        second = (
            Mapping.from_pairs("p1", "p2", {"Creator": "Creator"}),
            Mapping.from_pairs("p2", "p3", {"Creator": "Creator"}),
        )
        paths = ParallelPaths(source="p1", target="p3", first=first, second=second)
        feedback = feedback_from_parallel_paths(paths, "Creator")
        assert feedback.kind is FeedbackKind.POSITIVE
        assert feedback.structure is StructureKind.PARALLEL_PATHS
        assert len(feedback.mapping_names) == 3
