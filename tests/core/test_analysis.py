"""Unit tests for network evidence gathering."""

import pytest

from repro.core.analysis import (
    NetworkStructureCache,
    analyze_neighborhood,
    analyze_network,
)
from repro.core.feedback import FeedbackKind
from repro.generators.paper import intro_example_network
from repro.generators.topologies import chain_network, cycle_network
from repro.mapping.corruption import drop_correspondences


@pytest.fixture(scope="module")
def intro_network():
    return intro_example_network(with_records=False)


class TestAnalyzeNetwork:
    def test_intro_network_has_positive_and_negative_evidence(self, intro_network):
        evidence = analyze_network(intro_network, "Creator", ttl=4)
        assert evidence.positive_count > 0
        assert evidence.negative_count > 0
        assert evidence.attribute == "Creator"

    def test_negative_evidence_involves_the_faulty_mapping(self, intro_network):
        evidence = analyze_network(intro_network, "Creator", ttl=4)
        for feedback in evidence.feedbacks:
            if feedback.kind is FeedbackKind.NEGATIVE:
                assert "p2->p4" in feedback.mapping_names

    def test_correct_attribute_has_no_negative_evidence(self, intro_network):
        evidence = analyze_network(intro_network, "Title", ttl=4)
        assert evidence.negative_count == 0
        assert evidence.positive_count > 0

    def test_correct_cycle_network_all_positive(self):
        network = cycle_network(4)
        evidence = analyze_network(network, network.attribute_universe()[0], ttl=5)
        assert evidence.negative_count == 0
        assert evidence.positive_count == 1

    def test_chain_network_has_no_evidence(self):
        network = chain_network(4)
        evidence = analyze_network(network, network.attribute_universe()[0], ttl=5)
        assert evidence.feedbacks == ()

    def test_unmappable_rule(self, intro_network):
        reduced, _ = drop_correspondences(
            intro_network.mapping("p3->p4"), ["Creator"]
        )
        # Swap in the reduced correspondence set (test-only surgery).
        intro_network.mapping("p3->p4")._by_source.clear()
        intro_network.mapping("p3->p4")._by_source.update(reduced._by_source)
        evidence = analyze_network(intro_network, "Creator", ttl=4)
        assert "p3->p4" in evidence.unmappable

    def test_mappings_with_evidence(self, intro_network):
        evidence = analyze_network(intro_network, "Title", ttl=4)
        assert "p2->p3" in evidence.mappings_with_evidence()

    def test_parallel_paths_only_for_directed_networks(self, intro_network):
        with_parallel = analyze_network(
            intro_network, "Title", ttl=4, include_parallel_paths=True
        )
        without_parallel = analyze_network(
            intro_network, "Title", ttl=4, include_parallel_paths=False
        )
        assert len(with_parallel.feedbacks) > len(without_parallel.feedbacks)


class TestNetworkStructureCache:
    def _fresh_network(self):
        return intro_example_network(with_records=False)

    def test_evidence_matches_analyze_network(self):
        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4)
        for attribute in ("Creator", "Title"):
            cached = cache.evidence_for(attribute)
            direct = analyze_network(network, attribute, ttl=4)
            assert cached.attribute == direct.attribute
            assert cached.unmappable == direct.unmappable
            assert len(cached.feedbacks) == len(direct.feedbacks)
            for a, b in zip(cached.feedbacks, direct.feedbacks):
                assert a.identifier == b.identifier
                assert a.kind == b.kind
                assert a.mapping_names == b.mapping_names

    def test_probes_once_across_attributes(self):
        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4)
        for attribute in ("Creator", "Title", "Subject", "Creator"):
            cache.evidence_for(attribute)
        assert cache.statistics.probes == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hits == 3

    def test_topology_mutation_triggers_reprobe(self):
        from repro.mapping.correspondence import Correspondence
        from repro.mapping.mapping import Mapping
        from repro.pdms.peer import Peer
        from repro.schema.schema import Schema

        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4)
        before = cache.evidence_for("Creator")
        network.add_peer(Peer("p9", Schema.from_names("p9", ["Creator"])))
        network.add_mapping(
            Mapping(
                "p2",
                "p9",
                [Correspondence("Creator", "Creator")],
            ),
            bidirectional=False,
        )
        after = cache.evidence_for("Creator")
        assert cache.statistics.probes == 2
        # The new dangling mapping creates no cycle, so the evidence set is
        # structurally unchanged — but it was re-derived from a fresh probe.
        assert len(after.feedbacks) == len(before.feedbacks)

    def test_removed_mapping_refreshes_incrementally(self):
        """A removal is served by filtering the cached structures — no full
        re-enumeration — and still yields the exact fresh-probe set."""
        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4)
        before = cache.evidence_for("Creator")
        assert before.feedbacks
        network.remove_mapping("p2->p4")
        after = cache.evidence_for("Creator")
        assert cache.statistics.probes == 1
        assert cache.statistics.partial_refreshes == 1
        assert len(after.feedbacks) < len(before.feedbacks)
        fresh = analyze_network(network, "Creator", ttl=4)
        assert {f.mapping_names for f in after.feedbacks} == {
            f.mapping_names for f in fresh.feedbacks
        }

    def test_added_mapping_refreshes_incrementally_for_cycles(self):
        from repro.mapping.mapping import Mapping

        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4, include_parallel_paths=False)
        cache.evidence_for("Creator")
        # A reverse mapping p4->p2 closes new cycles through the new edge.
        network.add_mapping(
            Mapping.from_pairs("p4", "p2", {"Creator": "Creator"}),
            bidirectional=False,
        )
        after = cache.evidence_for("Creator")
        assert cache.statistics.probes == 1
        assert cache.statistics.partial_refreshes == 1
        fresh = analyze_network(
            network, "Creator", ttl=4, include_parallel_paths=False
        )
        # Incrementally found cycles may be rotated differently (they are
        # discovered from the new mapping's source peer, like a real probe
        # from that peer would); compare the rotation-invariant keys.
        assert {c.canonical_key() for c in after.cycles} == {
            c.canonical_key() for c in fresh.cycles
        }

    def test_added_mapping_refreshes_incrementally_for_parallel_paths(self):
        from repro.mapping.mapping import Mapping

        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4, include_parallel_paths=True)
        cache.evidence_for("Creator")
        network.add_mapping(
            Mapping.from_pairs("p4", "p2", {"Creator": "Creator"}),
            bidirectional=False,
        )
        after = cache.evidence_for("Creator")
        assert cache.statistics.probes == 1
        assert cache.statistics.partial_refreshes == 1
        fresh = analyze_network(
            network, "Creator", ttl=4, include_parallel_paths=True
        )
        assert {c.canonical_key() for c in after.cycles} == {
            c.canonical_key() for c in fresh.cycles
        }
        assert {p.canonical_key() for p in after.parallel_paths} == {
            p.canonical_key() for p in fresh.parallel_paths
        }

    def test_mutation_churn_is_served_incrementally(self):
        """A burst of adds and removals with parallel paths enabled is
        absorbed by incremental grafting/filtering: every refresh matches a
        fresh probe and partial refreshes dominate full re-probes."""
        from repro.mapping.mapping import Mapping

        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4, include_parallel_paths=True)
        cache.evidence_for("Creator")

        def check():
            after = cache.evidence_for("Creator")
            fresh = analyze_network(
                network, "Creator", ttl=4, include_parallel_paths=True
            )
            assert {c.canonical_key() for c in after.cycles} == {
                c.canonical_key() for c in fresh.cycles
            }
            assert {p.canonical_key() for p in after.parallel_paths} == {
                p.canonical_key() for p in fresh.parallel_paths
            }

        network.add_mapping(
            Mapping.from_pairs("p4", "p2", {"Creator": "Creator"}),
            bidirectional=False,
        )
        check()
        network.add_mapping(
            Mapping.from_pairs("p3", "p1", {"Creator": "Creator"}),
            bidirectional=False,
        )
        check()
        network.remove_mapping("p2->p4")
        check()
        network.remove_mapping("p4->p2")
        check()
        assert cache.statistics.probes == 1
        assert cache.statistics.partial_refreshes == 4
        assert (
            cache.statistics.partial_refreshes > cache.statistics.full_refreshes
        )

    def test_added_peer_falls_back_to_full_probe(self):
        from repro.pdms.peer import Peer
        from repro.schema.schema import Schema

        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4)
        cache.evidence_for("Creator")
        network.add_peer(Peer("p9", Schema.from_names("p9", ["Creator"])))
        cache.evidence_for("Creator")
        assert cache.statistics.probes == 2
        assert cache.statistics.partial_refreshes == 0
        assert cache.statistics.full_refreshes == 2

    def test_interleaved_mutations_replay_in_order(self):
        from repro.mapping.mapping import Mapping

        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4, include_parallel_paths=False)
        cache.evidence_for("Creator")
        network.remove_mapping("p2->p4")
        network.add_mapping(
            Mapping.from_pairs("p4", "p2", {"Creator": "Creator"}),
            bidirectional=False,
        )
        after = cache.evidence_for("Creator")
        assert cache.statistics.partial_refreshes == 1
        fresh = analyze_network(
            network, "Creator", ttl=4, include_parallel_paths=False
        )
        assert {c.canonical_key() for c in after.cycles} == {
            c.canonical_key() for c in fresh.cycles
        }

    def test_invalidate_forces_reprobe(self):
        network = self._fresh_network()
        cache = NetworkStructureCache(network, ttl=4)
        cache.evidence_for("Creator")
        cache.invalidate()
        cache.evidence_for("Creator")
        assert cache.statistics.probes == 2

    def test_network_version_counter(self):
        from repro.pdms.peer import Peer
        from repro.schema.schema import Schema

        network = self._fresh_network()
        version = network.version
        network.add_peer(Peer("p9", Schema.from_names("p9", ["Creator"])))
        assert network.version == version + 1
        network.remove_mapping("p2->p4")
        assert network.version == version + 2


class TestAnalyzeNeighborhood:
    def test_neighborhood_view_is_subset_of_global_view(self, intro_network):
        local = analyze_neighborhood(intro_network, "p2", "Title", ttl=4)
        global_view = analyze_network(intro_network, "Title", ttl=4)
        assert len(local.feedbacks) <= len(global_view.feedbacks)
        for cycle in local.cycles:
            assert cycle.origin == "p2"

    def test_neighborhood_detects_the_fault_from_p2(self, intro_network):
        local = analyze_neighborhood(intro_network, "p2", "Creator", ttl=4)
        assert local.negative_count > 0
