"""Unit tests for the mapping quality assessor (the user-facing pipeline)."""

import pytest

from repro.core.beliefs import PriorBeliefStore
from repro.core.quality import MappingQualityAssessor
from repro.exceptions import ReproError
from repro.generators.paper import intro_example_network
from repro.pdms.query import Query, substring_predicate
from repro.pdms.routing import RoutingPolicy


@pytest.fixture(scope="module")
def assessor():
    network = intro_example_network(with_records=True)
    assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
    assessor.assess_attribute("Creator")
    return assessor


class TestAssessment:
    def test_faulty_mapping_gets_low_probability(self, assessor):
        assert assessor.probability("p2->p4", "Creator") < 0.5
        assert assessor.probability("p2->p3", "Creator") > 0.5

    def test_is_erroneous_decision(self, assessor):
        assert assessor.is_erroneous("p2->p4", "Creator", theta=0.5)
        assert not assessor.is_erroneous("p2->p3", "Creator", theta=0.5)

    def test_invalid_theta_rejected(self, assessor):
        with pytest.raises(ReproError):
            assessor.is_erroneous("p2->p4", "Creator", theta=1.5)

    def test_flagged_mappings(self, assessor):
        assert assessor.flagged_mappings("Creator", theta=0.5) == ("p2->p4",)

    def test_assessment_is_cached(self, assessor):
        first = assessor.assessment("Creator")
        second = assessor.assessment("Creator")
        assert first is second

    def test_attribute_without_negative_evidence_all_above_threshold(self, assessor):
        assessment = assessor.assess_attribute("Title")
        assert all(value > 0.5 for value in assessment.posteriors.values())
        assert assessor.flagged_mappings("Title", theta=0.5) == ()

    def test_probability_accepts_mapping_objects(self, assessor):
        mapping = assessor.network.mapping("p2->p4")
        assert assessor.probability(mapping, "Creator") < 0.5

    def test_probability_falls_back_to_prior_without_evidence(self):
        from repro.mapping.mapping import Mapping
        from repro.pdms.peer import Peer
        from repro.schema.schema import Schema

        network = intro_example_network(with_records=False)
        # Add a dangling peer reachable only through one mapping: that
        # mapping participates in no cycle or parallel path, so it has no
        # evidence and must keep its prior.
        network.add_peer(Peer("p5", Schema.from_names("p5", ["Creator", "Title"])))
        network.add_mapping(
            Mapping.from_pairs("p3", "p5", {"Creator": "Creator", "Title": "Title"}),
            bidirectional=False,
        )
        priors = PriorBeliefStore(default_prior=0.8)
        assessor = MappingQualityAssessor(network, priors=priors, delta=0.1, ttl=4)
        assessor.assess_attribute("Creator")
        assert assessor.probability("p3->p5", "Creator") == pytest.approx(0.8)

    def test_assess_all_attributes_covers_schema_universe(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=3)
        assessments = assessor.assess_attributes(["Creator", "Title"])
        assert set(assessments) == {"Creator", "Title"}

    def test_derived_delta_from_schema_size(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=None, ttl=3)
        assert assessor._delta_for("Creator") == pytest.approx(0.1)


class TestStructureCacheWiring:
    def test_assess_all_attributes_probes_once(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        assessments = assessor.assess_all_attributes()
        assert len(assessments) >= 2
        assert assessor.structure_cache.statistics.probes == 1

    def test_em_rounds_do_not_reprobe(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        for _ in range(3):
            assessor.assess_all_attributes()
            assessor.update_priors()
        assert assessor.structure_cache.statistics.probes == 1

    def test_cache_matches_uncached_pipeline(self):
        network = intro_example_network(with_records=False)
        cached = MappingQualityAssessor(network, delta=0.1, ttl=4)
        uncached = MappingQualityAssessor(
            network, delta=0.1, ttl=4, use_structure_cache=False
        )
        for attribute in network.attribute_universe():
            a = cached.assess_attribute(attribute)
            b = uncached.assess_attribute(attribute)
            assert a.posteriors == b.posteriors
            assert a.unmappable == b.unmappable

    def test_topology_mutation_reprobes_automatically(self):
        from repro.mapping.correspondence import Correspondence
        from repro.mapping.mapping import Mapping
        from repro.pdms.peer import Peer
        from repro.schema.schema import Schema

        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        assessor.assess_attribute("Creator")
        network.add_peer(Peer("p9", Schema.from_names("p9", ["Creator"])))
        network.add_mapping(
            Mapping("p4", "p9", [Correspondence("Creator", "Creator")]),
            bidirectional=False,
        )
        assessor.assess_attribute("Creator")
        assert assessor.structure_cache.statistics.probes == 2

    def test_invalidate_clears_assessments_and_cache(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        first = assessor.assess_attribute("Creator")
        assert assessor.assessment("Creator") is first
        assessor.invalidate()
        second = assessor.assessment("Creator")
        assert second is not first
        assert assessor.structure_cache.statistics.probes == 2


class TestDeterministicSeeding:
    def test_lossy_assessment_is_deterministic_by_default(self):
        """Regression: seed=None used to override the transport's seeded
        fallback, making default lossy assessments nondeterministic."""
        posteriors = []
        for _ in range(2):
            network = intro_example_network(with_records=False)
            assessor = MappingQualityAssessor(
                network, delta=0.1, ttl=4, send_probability=0.5
            )
            posteriors.append(assessor.assess_attribute("Creator").posteriors)
        assert posteriors[0] == posteriors[1]

    def test_lossy_assess_local_is_deterministic_by_default(self):
        results = []
        for _ in range(2):
            network = intro_example_network(with_records=False)
            assessor = MappingQualityAssessor(
                network, delta=0.1, ttl=4, send_probability=0.5
            )
            results.append(assessor.assess_local("p2", "Creator"))
        assert results[0] == results[1]

    def test_explicit_seed_still_honoured(self):
        network = intro_example_network(with_records=False)
        a = MappingQualityAssessor(
            network, delta=0.1, ttl=4, send_probability=0.5, seed=1
        ).assess_attribute("Creator")
        b = MappingQualityAssessor(
            network, delta=0.1, ttl=4, send_probability=0.5, seed=1
        ).assess_attribute("Creator")
        assert a.posteriors == b.posteriors


class TestRoutingIntegration:
    def test_router_blocks_faulty_mapping(self, assessor):
        router = assessor.router(policy=RoutingPolicy(default_threshold=0.5))
        query = Query.select_project(
            "p2",
            project=["Creator"],
            where={"Subject": substring_predicate("river")},
        )
        trace = router.route(query)
        assert "p2->p4" in {hop.mapping_name for hop in trace.blocked_hops}
        assert set(trace.visited_peers) == {"p1", "p2", "p3", "p4"}

    def test_oracle_signature(self, assessor):
        oracle = assessor.as_oracle()
        mapping = assessor.network.mapping("p2->p3")
        assert 0.0 <= oracle(mapping, "Creator") <= 1.0


class TestPriorUpdates:
    def test_update_priors_folds_posteriors(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        assessor.assess_attribute("Creator")
        updated = assessor.update_priors(["Creator"])
        assert updated[("p2->p4", "Creator")] < 0.5
        assert assessor.priors.prior("p2->p4", "Creator") < 0.5
        # Updated priors feed the next assessment round.
        second = assessor.assess_attribute("Creator")
        assert second.posteriors["p2->p4"] < 0.5
