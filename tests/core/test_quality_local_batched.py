"""Tests for the batched per-origin decentralised assessment (§4.5).

Covers the batched-vs-sequential local parity across seeds (lossless and
lossy), the per-origin neighbourhood cache (probe once per origin and
network version, incremental refreshes), the blocked engine's validation,
and the local-view correctness fixes (⊥ rule, prior fallback, θ-flagging,
empty-attributes coarse assessment).
"""

import pytest

from repro.core.analysis import NeighborhoodStructureCache, analyze_neighborhood
from repro.core.batched import (
    AssessmentLane,
    BatchedEmbeddedMessagePassing,
    BlockedEmbeddedMessagePassing,
)
from repro.core.beliefs import PriorBeliefStore
from repro.core.evolution import EvolvingPDMS, MappingEvent, MappingEventKind
from repro.core.quality import MappingQualityAssessor
from repro.exceptions import FeedbackError
from repro.generators.paper import INTRO_SCHEMA_CONCEPTS, intro_example_network
from repro.generators.scenarios import generate_scenario
from repro.mapping.mapping import Mapping
from repro.pdms.peer import Peer
from repro.pdms.routing import RoutingPolicy
from repro.schema.schema import Schema


def _assessor_pair(network, **kwargs):
    batched = MappingQualityAssessor(network, **kwargs)
    sequential = MappingQualityAssessor(network, use_batched_engine=False, **kwargs)
    return batched, sequential


def _worst_view_difference(batched_views, sequential_views):
    assert set(batched_views) == set(sequential_views)
    worst = 0.0
    for origin, sequential_view in sequential_views.items():
        batched_view = batched_views[origin]
        assert set(batched_view) == set(sequential_view), origin
        for name, value in sequential_view.items():
            worst = max(worst, abs(batched_view[name] - value))
    return worst


def _dangling_network(default_prior=0.8):
    """Intro network plus a dangling p3→p5 mapping with no evidence."""
    network = intro_example_network(with_records=False)
    network.add_peer(Peer("p5", Schema.from_names("p5", ["Creator", "Title"])))
    network.add_mapping(
        Mapping.from_pairs("p3", "p5", {"Creator": "Creator", "Title": "Title"}),
        bidirectional=False,
    )
    priors = PriorBeliefStore(default_prior=default_prior)
    return network, priors


class TestBatchedLocalParity:
    """assess_locals must replay the (fixed) sequential per-origin runs."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lossless_parity_on_intro_network(self, seed):
        network = intro_example_network(with_records=False)
        batched, sequential = _assessor_pair(network, delta=0.1, ttl=4, seed=seed)
        b = batched.assess_local_all("Creator")
        s = sequential.assess_local_all("Creator")
        assert set(b) == set(network.peer_names)
        assert _worst_view_difference(b, s) <= 1e-9

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lossy_parity_across_seeds(self, seed):
        network = intro_example_network(with_records=False)
        batched, sequential = _assessor_pair(
            network, delta=0.1, ttl=4, seed=seed, send_probability=0.6
        )
        b = batched.assess_local_all("Creator")
        s = sequential.assess_local_all("Creator")
        assert _worst_view_difference(b, s) <= 1e-9

    @pytest.mark.parametrize("seed", [3, 5, 9])
    def test_lossy_parity_on_generated_scenario(self, seed):
        scenario = generate_scenario(
            topology="scale-free",
            peer_count=16,
            attribute_count=8,
            error_rate=0.2,
            seed=7,
        )
        network = scenario.network
        attribute = network.attribute_universe()[0]
        batched, sequential = _assessor_pair(
            network,
            delta=None,
            ttl=3,
            include_parallel_paths=False,
            seed=seed,
            send_probability=0.7,
        )
        b = batched.assess_locals(network.peer_names, attribute)
        s = sequential.assess_locals(network.peer_names, attribute)
        assert _worst_view_difference(b, s) <= 1e-9

    def test_subset_of_origins(self):
        network = intro_example_network(with_records=False)
        batched, sequential = _assessor_pair(network, delta=0.1, ttl=4, seed=0)
        origins = ("p2", "p4")
        b = batched.assess_locals(origins, "Creator")
        s = {o: sequential.assess_local(o, "Creator") for o in origins}
        assert _worst_view_difference(b, s) <= 1e-9

    def test_matches_single_assess_local(self):
        """The batched view of one origin equals its assess_local call."""
        network = intro_example_network(with_records=False)
        batched, sequential = _assessor_pair(
            network, delta=0.1, ttl=4, seed=2, send_probability=0.8
        )
        b = batched.assess_local_all("Creator")["p2"]
        s = sequential.assess_local("p2", "Creator")
        assert set(b) == set(s)
        for name, value in s.items():
            assert b[name] == pytest.approx(value, abs=1e-9)

    def test_blocked_engine_matches_general_lane_engine(self):
        """The block-diagonal packing is an execution detail: the general
        stacked lane engine produces the same results on the same lanes."""
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(
            network, delta=0.1, ttl=4, seed=1, send_probability=0.7
        )
        plan, blocks = assessor._local_assessment_plan(network.peer_names)
        from dataclasses import replace

        from repro.core.embedded import MessageTransport

        def lanes():
            built = []
            for origin in network.peer_names:
                evidence = assessor.neighborhood_cache.evidence_for(
                    origin, "Creator"
                )
                feedbacks = tuple(
                    replace(
                        feedback,
                        mapping_names=tuple(
                            f"{origin}::{name}"
                            for name in feedback.mapping_names
                        ),
                    )
                    for feedback in evidence.feedbacks
                )
                built.append(
                    AssessmentLane(
                        key=origin,
                        feedbacks=feedbacks,
                        structure_indices=blocks[origin],
                        priors=None,
                        delta=0.1,
                        transport=MessageTransport(0.7, seed=1),
                    )
                )
            return built

        blocked = BlockedEmbeddedMessagePassing(plan, lanes()).run()
        general = BatchedEmbeddedMessagePassing.from_lanes(plan, lanes()).run()
        assert set(blocked) == set(general)
        for key, general_result in general.items():
            blocked_result = blocked[key]
            assert (blocked_result is None) == (general_result is None)
            if general_result is None:
                continue
            assert blocked_result.iterations == general_result.iterations
            assert blocked_result.converged == general_result.converged
            assert (
                blocked_result.messages_attempted
                == general_result.messages_attempted
            )
            assert set(blocked_result.posteriors) == set(general_result.posteriors)
            for name, value in general_result.posteriors.items():
                assert blocked_result.posteriors[name] == pytest.approx(
                    value, abs=1e-9
                )


class TestProbeOnce:
    def test_one_probe_per_origin_across_attributes_and_rounds(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        for _ in range(3):
            assessor.assess_local_all("Creator")
            assessor.assess_local_all("Title")
        statistics = assessor.neighborhood_cache.statistics
        assert statistics.probes == len(network.peer_names)
        assert assessor.local_plan_compile_count == 1

    def test_sequential_path_shares_the_cache(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(
            network, delta=0.1, ttl=4, use_batched_engine=False
        )
        for _ in range(2):
            for origin in network.peer_names:
                assessor.assess_local(origin, "Creator")
        assert assessor.neighborhood_cache.statistics.probes == len(
            network.peer_names
        )

    def test_disabled_cache_probes_per_call(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(
            network, delta=0.1, ttl=4, use_structure_cache=False
        )
        assessor.assess_local("p2", "Creator")
        assessor.assess_local("p2", "Creator")
        assert assessor.neighborhood_cache.statistics.probes == 0

    def test_mutation_reprobes_once_per_new_version(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        before = assessor.assess_local_all("Creator")
        assert "p2->p4" in before["p2"]
        network.remove_mapping("p2->p4")
        after = assessor.assess_local_all("Creator")
        assert "p2->p4" not in after["p2"]
        statistics = assessor.neighborhood_cache.statistics
        # The removal is replayed incrementally: no second full probe.
        assert statistics.probes == len(network.peer_names)
        assert statistics.partial_refreshes == len(network.peer_names)
        assert assessor.local_plan_compile_count == 2
        # The refreshed views match a fresh sequential assessor.
        fresh = MappingQualityAssessor(
            network, delta=0.1, ttl=4, seed=0, use_batched_engine=False
        ).assess_local_all("Creator")
        assert _worst_view_difference(after, fresh) <= 1e-9


class TestNeighborhoodCache:
    def _canonical(self, cycles):
        return {cycle.canonical_key() for cycle in cycles}

    def test_matches_analyze_neighborhood(self):
        network = intro_example_network(with_records=False)
        cache = NeighborhoodStructureCache(network, ttl=4)
        for origin in network.peer_names:
            cached = cache.evidence_for(origin, "Creator")
            fresh = analyze_neighborhood(network, origin, "Creator", ttl=4)
            assert [f.identifier for f in cached.feedbacks] == [
                f.identifier for f in fresh.feedbacks
            ]
            assert [f.kind for f in cached.feedbacks] == [
                f.kind for f in fresh.feedbacks
            ]
            assert cached.unmappable == fresh.unmappable

    def test_remove_mapping_refreshes_incrementally(self):
        network = intro_example_network(with_records=False)
        cache = NeighborhoodStructureCache(network, ttl=4)
        for origin in network.peer_names:
            cache.structures_for(origin)
        network.remove_mapping("p2->p4")
        for origin in network.peer_names:
            cycles, _ = cache.structures_for(origin)
            expected, _ = (
                NeighborhoodStructureCache(network, ttl=4).structures_for(origin)
            )
            assert self._canonical(cycles) == self._canonical(expected)
        assert cache.statistics.partial_refreshes == len(network.peer_names)
        assert cache.statistics.probes == len(network.peer_names)

    def test_add_mapping_enumerates_only_new_cycles(self):
        network = intro_example_network(with_records=False)
        cache = NeighborhoodStructureCache(
            network, ttl=4, include_parallel_paths=False
        )
        for origin in network.peer_names:
            cache.structures_for(origin)
        network.add_mapping(
            Mapping.from_pairs(
                "p4",
                "p2",
                {concept: concept for concept in INTRO_SCHEMA_CONCEPTS},
            ),
            bidirectional=False,
        )
        for origin in network.peer_names:
            cycles, _ = cache.structures_for(origin)
            expected, _ = NeighborhoodStructureCache(
                network, ttl=4, include_parallel_paths=False
            ).structures_for(origin)
            assert self._canonical(cycles) == self._canonical(expected)
        assert cache.statistics.partial_refreshes == len(network.peer_names)
        # Incrementally grafted cycles start at the origin, like a probe's.
        for origin in network.peer_names:
            cycles, _ = cache.structures_for(origin)
            for cycle in cycles:
                assert cycle.mappings[0].source == origin

    def test_mutation_churn_with_parallel_paths_is_served_incrementally(self):
        """Adds and removals with parallel paths enabled are absorbed by
        grafting/filtering per origin — partial refreshes dominate — and
        every origin's view still matches a fresh probe."""
        network = intro_example_network(with_records=False)
        cache = NeighborhoodStructureCache(
            network, ttl=4, include_parallel_paths=True
        )
        for origin in network.peer_names:
            cache.structures_for(origin)

        def check():
            fresh_cache = NeighborhoodStructureCache(
                network, ttl=4, include_parallel_paths=True
            )
            for origin in network.peer_names:
                cycles, paths = cache.structures_for(origin)
                expected_cycles, expected_paths = fresh_cache.structures_for(
                    origin
                )
                assert self._canonical(cycles) == self._canonical(expected_cycles)
                assert {p.canonical_key() for p in paths} == {
                    p.canonical_key() for p in expected_paths
                }

        network.add_mapping(
            Mapping.from_pairs("p4", "p2", {"Creator": "Creator"}),
            bidirectional=False,
        )
        check()
        network.remove_mapping("p2->p4")
        check()
        network.add_mapping(
            Mapping.from_pairs("p3", "p1", {"Creator": "Creator"}),
            bidirectional=False,
        )
        check()
        assert cache.statistics.partial_refreshes == 3 * len(network.peer_names)
        assert (
            cache.statistics.partial_refreshes > cache.statistics.full_refreshes
        )

    def test_add_peer_falls_back_to_full_probe(self):
        network = intro_example_network(with_records=False)
        cache = NeighborhoodStructureCache(network, ttl=4)
        cache.structures_for("p2")
        network.add_peer(Peer("p9", Schema.from_names("p9", ["Creator"])))
        cache.structures_for("p2")
        assert cache.statistics.probes == 2
        assert cache.statistics.partial_refreshes == 0


class TestLocalViewResolutionOrder:
    """Regression tests for the assess_local correctness fixes."""

    def test_prior_fallback_with_informative_evidence(self):
        """An own mapping without informative evidence is no longer dropped
        from the local view — it falls back to its prior."""
        network, priors = _dangling_network(default_prior=0.8)
        for assessor in _assessor_pair(network, priors=priors, delta=0.1, ttl=4):
            local = assessor.assess_locals(["p3"], "Creator")["p3"]
            # p3->p4 sits in informative cycles; p3->p5 has no evidence.
            assert local["p3->p4"] > 0.5
            assert local["p3->p5"] == pytest.approx(0.8)

    def test_bottom_rule_applies_with_informative_evidence(self):
        """An own mapping whose source schema declares the attribute but
        that provides no correspondence scores 0.0, not its prior — even
        when the origin has informative evidence for other mappings."""
        network = intro_example_network(with_records=False)
        network.remove_mapping("p2->p4")
        incomplete = Mapping.from_pairs(
            "p2",
            "p4",
            {
                concept: concept
                for concept in INTRO_SCHEMA_CONCEPTS
                if concept != "Creator"
            },
        )
        network.add_mapping(incomplete, bidirectional=False)
        for assessor in _assessor_pair(network, delta=0.1, ttl=4):
            local = assessor.assess_locals(["p2"], "Creator")["p2"]
            assert local["p2->p4"] == 0.0
            assert local["p2->p3"] > 0.5
            assert assessor.probability("p2->p4", "Creator") == 0.0

    def test_bottom_rule_applies_without_evidence(self):
        """The no-evidence branch also applies the ⊥ rule instead of
        silently dropping unmappable own mappings."""
        network = intro_example_network(with_records=False)
        network.add_peer(Peer("p6", Schema.from_names("p6", ["Creator", "Title"])))
        network.add_mapping(
            Mapping.from_pairs("p6", "p1", {"Title": "Title"}),
            bidirectional=False,
        )
        for assessor in _assessor_pair(network, delta=0.1, ttl=4):
            local = assessor.assess_locals(["p6"], "Creator")["p6"]
            assert local == {"p6->p1": 0.0}
            title_view = assessor.assess_local("p6", "Title")
            assert title_view["p6->p1"] == pytest.approx(0.5)

    def test_no_evidence_branch_returns_priors(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=1)
        local = assessor.assess_locals(["p2"], "Creator")["p2"]
        assert set(local) == {"p2->p1", "p2->p3", "p2->p4"}
        assert all(value == pytest.approx(0.5) for value in local.values())


class TestThetaConsistency:
    """Regression: flagged_mappings must agree with is_erroneous."""

    def test_prior_below_theta_is_flagged(self):
        network, priors = _dangling_network(default_prior=0.3)
        assessor = MappingQualityAssessor(network, priors=priors, delta=0.1, ttl=4)
        assessor.assess_attribute("Creator")
        assert assessor.is_erroneous("p3->p5", "Creator", theta=0.5)
        assert "p3->p5" in assessor.flagged_mappings("Creator", theta=0.5)

    def test_prior_above_theta_is_not_flagged(self):
        network, priors = _dangling_network(default_prior=0.8)
        assessor = MappingQualityAssessor(network, priors=priors, delta=0.1, ttl=4)
        assert not assessor.is_erroneous("p3->p5", "Creator", theta=0.5)
        assert "p3->p5" not in assessor.flagged_mappings("Creator", theta=0.5)

    def test_unmappable_mapping_is_flagged(self):
        network = intro_example_network(with_records=False)
        network.add_peer(Peer("p6", Schema.from_names("p6", ["Creator", "Title"])))
        network.add_mapping(
            Mapping.from_pairs("p6", "p1", {"Title": "Title"}),
            bidirectional=False,
        )
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        flagged = assessor.flagged_mappings("Creator", theta=0.5)
        assert "p6->p1" in flagged
        assert assessor.is_erroneous("p6->p1", "Creator", theta=0.5)

    def test_decisions_agree_over_the_full_mapping_set(self):
        network, priors = _dangling_network(default_prior=0.3)
        assessor = MappingQualityAssessor(network, priors=priors, delta=0.1, ttl=4)
        flagged = set(assessor.flagged_mappings("Creator", theta=0.5))
        for mapping in network.mappings:
            in_scope = mapping.maps_attribute("Creator") or mapping.name in (
                assessor.assessment("Creator").unmappable
            )
            if not in_scope:
                continue
            assert (
                mapping.name in flagged
            ) == assessor.is_erroneous(mapping, "Creator", theta=0.5)

    def test_invalid_theta_rejected(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            assessor.flagged_mappings("Creator", theta=-0.1)


class TestAssessMappingEmptyAttributes:
    """Regression: no fabricated "*" attribute key."""

    def test_explicit_empty_iterable_raises(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=3)
        with pytest.raises(FeedbackError, match="at least one attribute"):
            assessor.assess_mapping("p2->p3", attributes=())

    def test_mapping_without_correspondences_scores_zero(self):
        network = intro_example_network(with_records=False)
        network.add_mapping(Mapping(source="p3", target="p1"), bidirectional=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=3)
        assert assessor.assess_mapping("p3->p1") == 0.0


class TestBlockedEngineValidation:
    def _plan_and_lane(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        plan, blocks = assessor._local_assessment_plan(network.peer_names)
        return network, assessor, plan, blocks

    def test_overlapping_lanes_rejected(self):
        from dataclasses import replace

        network, assessor, plan, blocks = self._plan_and_lane()
        origin = network.peer_names[0]
        evidence = assessor.neighborhood_cache.evidence_for(origin, "Creator")
        feedbacks = tuple(
            replace(
                feedback,
                mapping_names=tuple(
                    f"{origin}::{name}" for name in feedback.mapping_names
                ),
            )
            for feedback in evidence.feedbacks
        )
        lane = AssessmentLane(
            key=origin, feedbacks=feedbacks, structure_indices=blocks[origin]
        )
        clone = AssessmentLane(
            key="clone", feedbacks=feedbacks, structure_indices=blocks[origin]
        )
        with pytest.raises(FeedbackError, match="overlaps"):
            BlockedEmbeddedMessagePassing(plan, [lane, clone])

    def test_non_block_diagonal_plan_rejected(self):
        """A plan whose mappings span two lanes' structures is refused."""
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        shared_plan = assessor.assessment_plan()
        evidence = assessor.structure_cache.evidence_for("Creator")
        half = shared_plan.structure_count // 2
        first = AssessmentLane(
            key="first",
            feedbacks=tuple(evidence.feedbacks[:half]),
            structure_indices=tuple(range(half)),
        )
        second = AssessmentLane(
            key="second",
            feedbacks=tuple(evidence.feedbacks[half:]),
            structure_indices=tuple(range(half, shared_plan.structure_count)),
        )
        with pytest.raises(FeedbackError, match="block-diagonal"):
            BlockedEmbeddedMessagePassing(shared_plan, [first, second])


class TestEvolutionAndRoutingWiring:
    def test_evolving_pdms_tracks_local_views(self):
        network = intro_example_network(with_records=False)
        pdms = EvolvingPDMS(
            network, track_local_views=True, delta=0.1, ttl=4, seed=0
        )
        round_record = pdms.apply_event(
            MappingEvent(
                kind=MappingEventKind.CORRUPT_CORRESPONDENCE,
                mapping_name="p2->p3",
                attribute="Title",
                new_target="Medium",
            )
        )
        assert "Title" in round_record.local_posteriors
        views = round_record.local_posteriors["Title"]
        assert set(views) == set(network.peer_names)
        # p2's own view notices its freshly corrupted mapping.
        assert views["p2"]["p2->p3"] < 0.5

    def test_evolving_pdms_default_skips_local_views(self):
        network = intro_example_network(with_records=False)
        pdms = EvolvingPDMS(network, delta=0.1, ttl=4, seed=0)
        round_record = pdms.apply_event(
            MappingEvent(
                kind=MappingEventKind.REMOVE_MAPPING, mapping_name="p2->p4"
            )
        )
        assert round_record.local_posteriors == {}

    def test_local_oracle_blocks_faulty_mapping(self):
        network = intro_example_network(with_records=True)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        assert assessor.local_probability("p2->p4", "Creator") < 0.5
        assert assessor.local_probability("p2->p3", "Creator") > 0.5

        from repro.pdms.query import Query, substring_predicate

        router = assessor.local_router(policy=RoutingPolicy(default_threshold=0.5))
        query = Query.select_project(
            "p2",
            project=["Creator"],
            where={"Subject": substring_predicate("river")},
        )
        trace = router.route(query)
        assert "p2->p4" in {hop.mapping_name for hop in trace.blocked_hops}

    def test_local_oracle_refreshes_on_topology_mutation(self):
        """Regression: the local routing oracle must not serve views of a
        stale topology version after a tracked mutation."""
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        assert assessor.local_probability("p2->p4", "Creator") < 0.5
        network.remove_mapping("p2->p4")
        # The mapping is gone: its own peer no longer reports it at all, so
        # the oracle falls through to the ⊥/prior resolution of the fresh
        # view instead of the stale posterior.
        fresh = assessor.assess_local_all("Creator")
        assert "p2->p4" not in fresh["p2"]
        assert assessor.local_probability("p2->p3", "Creator") == pytest.approx(
            fresh["p2"]["p2->p3"]
        )

    def test_local_oracle_refreshes_after_prior_update(self):
        """Regression: EM prior updates drop the cached local views, so the
        local oracle's prior-fallback entries track the live store."""
        network, priors = _dangling_network(default_prior=0.8)
        assessor = MappingQualityAssessor(network, priors=priors, delta=0.1, ttl=4)
        assert assessor.local_probability("p3->p5", "Creator") == pytest.approx(0.8)
        assessor.assess_attribute("Creator")
        assessor.update_priors(["Creator"])
        # p3->p5 has no posterior, but other priors moved; the oracle must
        # agree with the global resolution for the fallback entry.
        assert assessor.local_probability("p3->p5", "Creator") == pytest.approx(
            assessor.probability("p3->p5", "Creator")
        )

    def test_local_views_cached_until_invalidate(self):
        network = intro_example_network(with_records=False)
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4, seed=0)
        assessor.local_probability("p2->p4", "Creator")
        probes = assessor.neighborhood_cache.statistics.probes
        assessor.local_probability("p2->p3", "Creator")
        assert assessor.neighborhood_cache.statistics.probes == probes
        assessor.invalidate()
        assessor.local_probability("p2->p4", "Creator")
        assert assessor.neighborhood_cache.statistics.probes == 2 * probes
