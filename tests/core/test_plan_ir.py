"""Plan-IR contract tests.

Two guarantees land here:

1. The kernel-surface layering invariant: engines must reach the compiled
   kernels (``segment_products``, ``FactorBatch``, ``CountFactorBatch``,
   ...) through :mod:`repro.factorgraph.plan` — the sanctioned re-export
   surface of the plan IR — never directly from
   :mod:`repro.factorgraph.compiled`.  Since PR 9 the invariant is stated
   once in :mod:`repro.lintkit.contracts` and enforced by the
   ``layering-plan-kernels`` rule; this test asserts ``repro-lint``
   reports zero findings for it (the hand-rolled AST walk it replaces
   lives on as the rule implementation).
2. The cross-engine x cross-executor parity matrix: the loop reference
   (dict-state backend), the NumPy executor and the threaded executor must
   agree on posteriors, iteration counts and rng-stream replay at dense
   (3, 8) and count-space (25, 40) arities, lossless and lossy.
"""

import pathlib

import pytest

import repro
from repro.core.analysis import analyze_network
from repro.core.embedded import EmbeddedMessagePassing, MessageTransport
from repro.core.quality import MappingQualityAssessor
from repro.generators.topologies import cycle_network
from repro.lintkit import run_lint, rules_by_id


class TestEnginesUseThePlanIR:
    def test_no_engine_imports_kernels_from_compiled(self):
        package_dir = pathlib.Path(repro.__file__).parent
        rule = rules_by_id()["layering-plan-kernels"]
        findings, _ = run_lint([package_dir], rules=[rule])
        offenders = [
            finding.render()
            for finding in findings
            if not finding.suppressed
        ]
        assert not offenders, (
            "engines must import kernels via repro.factorgraph.plan, "
            "not repro.factorgraph.compiled:\n" + "\n".join(offenders)
        )


@pytest.mark.parametrize("arity", [3, 8, 25, 40])
class TestExecutorParityMatrix:
    """One ring of ``arity`` mappings — a single feedback of that size —
    run through every executor against the loop reference."""

    def _informative(self, arity):
        network = cycle_network(arity, attribute_count=2, seed=arity)
        attribute = network.attribute_universe()[0]
        evidence = analyze_network(
            network, attribute, ttl=arity, include_parallel_paths=False
        )
        informative = evidence.informative_feedbacks
        assert len(informative) == 1 and informative[0].size == arity
        return network, attribute, informative

    def test_lossless_executors_match_loop_reference(self, arity):
        _, _, informative = self._informative(arity)
        dicts = EmbeddedMessagePassing(
            informative, priors=0.5, delta=0.1, backend="dicts"
        ).run()
        results = {}
        for executor in ("numpy", "threaded"):
            results[executor] = EmbeddedMessagePassing(
                informative,
                priors=0.5,
                delta=0.1,
                backend="arrays",
                executor=executor,
            ).run()
            assert results[executor].iterations == dicts.iterations
            for name, value in dicts.posteriors.items():
                assert results[executor].posteriors[name] == pytest.approx(
                    value, abs=1e-9
                )
        # The two executors schedule the same kernels over disjoint rows, so
        # they agree bit for bit, not just within tolerance.
        assert results["numpy"].posteriors == results["threaded"].posteriors

    def test_lossy_executors_replay_the_same_rng_streams(self, arity):
        _, _, informative = self._informative(arity)

        def run(backend, executor=None):
            return EmbeddedMessagePassing(
                informative,
                priors=0.5,
                delta=0.1,
                transport=MessageTransport(0.8, seed=arity),
                backend=backend,
                executor=executor,
            ).run()

        dicts = run("dicts")
        numpy_result = run("arrays", "numpy")
        threaded = run("arrays", "threaded")
        assert numpy_result.iterations == dicts.iterations
        assert threaded.iterations == dicts.iterations
        for name, value in dicts.posteriors.items():
            assert numpy_result.posteriors[name] == pytest.approx(
                value, abs=1e-12
            )
        assert numpy_result.posteriors == threaded.posteriors

    def test_batched_and_blocked_engines_under_both_executors(self, arity):
        network, attribute, _ = self._informative(arity)

        def assessor(executor, use_batched=True):
            return MappingQualityAssessor(
                network,
                delta=0.1,
                ttl=arity,
                include_parallel_paths=False,
                send_probability=0.7,
                seed=3,
                use_batched_engine=use_batched,
                executor=executor,
            )

        sequential = assessor(None, use_batched=False)
        reference = sequential.assess_attribute(attribute)
        posteriors = {}
        views = {}
        for executor in ("numpy", "threaded"):
            batched = assessor(executor)
            outcome = batched.assess_attributes([attribute])[attribute]
            assert outcome.iterations == reference.iterations
            for name, value in reference.posteriors.items():
                assert outcome.posteriors[name] == pytest.approx(
                    value, abs=1e-12
                )
            posteriors[executor] = outcome.posteriors
            views[executor] = batched.assess_local_all(attribute)
        assert posteriors["numpy"] == posteriors["threaded"]
        assert views["numpy"] == views["threaded"]

        origin = network.peer_names[0]
        reference_view = sequential.assess_local(origin, attribute)
        assert set(views["numpy"][origin]) == set(reference_view)
        for name, value in reference_view.items():
            assert views["numpy"][origin][name] == pytest.approx(
                value, abs=1e-12
            )
