"""Property-based tests for the core probabilistic model.

These check the analytical shape of the paper's model: the single-cycle
posterior formula, symmetry of mappings inside a cycle, and the monotone
effect of Δ and the prior.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.embedded import EmbeddedMessagePassing, EmbeddedOptions
from repro.core.pdms_factor_graph import build_factor_graph, variable_name_for
from repro.factorgraph.exact import exact_marginals
from repro.generators.paper import single_cycle_feedback

deltas = st.floats(min_value=0.01, max_value=0.5)
#: Realistic Δ values (Δ ≈ 1/#attributes); with unrealistically large Δ the
#: CPT's "compensated errors" branch can dominate and positive feedback stops
#: being confirmatory, so the monotonicity properties below use this range.
small_deltas = st.floats(min_value=0.01, max_value=0.15)
priors = st.floats(min_value=0.2, max_value=0.8)
cycle_lengths = st.integers(min_value=2, max_value=7)


def closed_form_positive_cycle_posterior(length: int, delta: float) -> float:
    """Analytical posterior for a positive cycle with uniform priors.

    P(m correct | f+) = (1 + Δ(2^{n-1} − n)) / (1 + Δ(2^n − 1 − n)).
    """
    numerator = 1.0 + delta * (2 ** (length - 1) - length)
    denominator = 1.0 + delta * (2 ** length - 1 - length)
    return numerator / denominator


@given(cycle_lengths, deltas)
@settings(max_examples=40, deadline=None)
def test_single_positive_cycle_matches_closed_form(length, delta):
    feedback = single_cycle_feedback(length)
    graph = build_factor_graph([feedback], priors=0.5, delta=delta).graph
    exact = exact_marginals(graph)
    expected = closed_form_positive_cycle_posterior(length, delta)
    for mapping_name in feedback.mapping_names:
        value = float(exact[variable_name_for(mapping_name, "Creator")][0])
        assert value == pytest.approx(expected, abs=1e-6)


@given(cycle_lengths, deltas, priors)
@settings(max_examples=30, deadline=None)
def test_cycle_members_are_symmetric(length, delta, prior):
    """All mappings of a single cycle share the same posterior."""
    feedback = single_cycle_feedback(length)
    engine = EmbeddedMessagePassing(
        [feedback], priors=prior, delta=delta,
        options=EmbeddedOptions(max_rounds=4, tolerance=1e-12),
    )
    posteriors = engine.run().posteriors
    values = list(posteriors.values())
    assert max(values) - min(values) < 1e-9


@given(cycle_lengths, small_deltas)
@settings(max_examples=30, deadline=None)
def test_positive_feedback_never_decreases_belief(length, delta):
    """Positive cycle feedback can only confirm the prior (≥ 0.5)."""
    feedback = single_cycle_feedback(length, kind="+")
    engine = EmbeddedMessagePassing(
        [feedback], priors=0.5, delta=delta,
        options=EmbeddedOptions(max_rounds=4, tolerance=1e-12),
    )
    for value in engine.run().posteriors.values():
        assert value >= 0.5 - 1e-9


@given(cycle_lengths, small_deltas)
@settings(max_examples=30, deadline=None)
def test_negative_feedback_never_increases_belief(length, delta):
    feedback = single_cycle_feedback(length, kind="-")
    engine = EmbeddedMessagePassing(
        [feedback], priors=0.5, delta=delta,
        options=EmbeddedOptions(max_rounds=4, tolerance=1e-12),
    )
    for value in engine.run().posteriors.values():
        assert value <= 0.5 + 1e-9


@given(small_deltas)
@settings(max_examples=20, deadline=None)
def test_longer_cycles_give_weaker_evidence(delta):
    """Figure 10: the posterior from a positive cycle decays towards 0.5 as
    the cycle grows."""
    values = []
    for length in (2, 4, 8, 12):
        feedback = single_cycle_feedback(length)
        engine = EmbeddedMessagePassing(
            [feedback], priors=0.5, delta=delta,
            options=EmbeddedOptions(max_rounds=4, tolerance=1e-12),
        )
        values.append(engine.run().posteriors["p1->p2"])
    # The *strength* of the evidence (distance from the 0.5 prior) decays
    # monotonically with the cycle length, and long cycles end up carrying
    # almost no information (the posterior may legitimately sit a hair below
    # 0.5 for large Δ, see the CPT).
    strengths = [abs(value - 0.5) for value in values]
    # Tolerance of 1e-3: once the posterior is within a fraction of a percent
    # of 0.5 the "strength" may wiggle as it crosses the prior.
    assert all(a >= b - 1e-3 for a, b in zip(strengths, strengths[1:]))
    assert abs(values[-1] - 0.5) < 0.05


@given(priors)
@settings(max_examples=20, deadline=None)
def test_posteriors_are_probabilities(prior):
    from repro.generators.paper import figure4_feedbacks

    engine = EmbeddedMessagePassing(
        figure4_feedbacks(), priors=prior, delta=0.1,
        options=EmbeddedOptions(max_rounds=30),
    )
    for value in engine.run().posteriors.values():
        assert 0.0 <= value <= 1.0
