"""Tests for belief maintenance under mapping-network churn."""

import pytest

from repro.core.beliefs import PriorBeliefStore
from repro.core.evolution import EvolvingPDMS, MappingEvent, MappingEventKind
from repro.exceptions import PDMSError
from repro.generators.paper import INTRO_ATTRIBUTE, intro_example_network
from repro.mapping.mapping import Mapping


@pytest.fixture
def evolving():
    network = intro_example_network(with_records=False)
    return EvolvingPDMS(network, delta=0.1, ttl=4, include_parallel_paths=False)


class TestEventApplication:
    def test_corrupting_a_correspondence_lowers_its_belief(self, evolving):
        # p3->p4 starts correct; corrupt its Creator correspondence.
        event = MappingEvent(
            kind=MappingEventKind.CORRUPT_CORRESPONDENCE,
            mapping_name="p3->p4",
            attribute=INTRO_ATTRIBUTE,
            new_target="Title",
        )
        round_record = evolving.apply_event(event)
        assert round_record.assessed_attributes == (INTRO_ATTRIBUTE,)
        assert evolving.network.mapping("p3->p4").apply(INTRO_ATTRIBUTE) == "Title"
        assert evolving.current_belief("p3->p4", INTRO_ATTRIBUTE) < 0.5

    def test_repairing_the_faulty_mapping_restores_belief(self, evolving):
        repair = MappingEvent(
            kind=MappingEventKind.REPAIR_CORRESPONDENCE,
            mapping_name="p2->p4",
            attribute=INTRO_ATTRIBUTE,
            new_target=INTRO_ATTRIBUTE,
        )
        round_record = evolving.apply_event(repair)
        assert evolving.network.mapping("p2->p4").apply(INTRO_ATTRIBUTE) == INTRO_ATTRIBUTE
        # With the repair in place every cycle is consistent again.
        assert round_record.posteriors[("p2->p4", INTRO_ATTRIBUTE)] > 0.5
        assert evolving.current_belief("p2->p4", INTRO_ATTRIBUTE) > 0.5

    def test_removing_a_mapping_removes_it_from_the_network(self, evolving):
        event = MappingEvent(
            kind=MappingEventKind.REMOVE_MAPPING, mapping_name="p2->p4"
        )
        evolving.apply_event(event)
        assert not evolving.network.has_mapping("p2->p4")
        assert "p2->p4" not in [m.name for m in evolving.network.peer("p2").outgoing_mappings]

    def test_adding_a_mapping_triggers_assessment(self, evolving):
        new_mapping = Mapping.from_pairs(
            "p3", "p1", {concept: concept for concept in ("Creator", "Title")},
            is_correct=True,
        )
        event = MappingEvent(kind=MappingEventKind.ADD_MAPPING, mapping=new_mapping)
        round_record = evolving.apply_event(event)
        assert evolving.network.has_mapping("p3->p1")
        assert set(round_record.assessed_attributes) == {"Creator", "Title"}

    def test_add_event_requires_a_mapping(self, evolving):
        with pytest.raises(PDMSError):
            evolving.apply_event(MappingEvent(kind=MappingEventKind.ADD_MAPPING))

    def test_corrupt_event_requires_target(self, evolving):
        with pytest.raises(PDMSError):
            evolving.apply_event(
                MappingEvent(
                    kind=MappingEventKind.CORRUPT_CORRESPONDENCE,
                    mapping_name="p2->p3",
                    attribute=INTRO_ATTRIBUTE,
                )
            )


class TestBeliefAccumulation:
    def test_priors_accumulate_across_rounds(self, evolving):
        """Evidence gathered before a change keeps influencing the prior
        after it (the running average of §4.4)."""
        corrupt = MappingEvent(
            kind=MappingEventKind.CORRUPT_CORRESPONDENCE,
            mapping_name="p2->p3",
            attribute=INTRO_ATTRIBUTE,
            new_target="Subject",
        )
        repair = MappingEvent(
            kind=MappingEventKind.REPAIR_CORRESPONDENCE,
            mapping_name="p2->p3",
            attribute=INTRO_ATTRIBUTE,
            new_target=INTRO_ATTRIBUTE,
        )
        evolving.apply_events([corrupt, repair])
        belief = evolving.current_belief("p2->p3", INTRO_ATTRIBUTE)
        # The repaired mapping is trusted again, but the earlier negative
        # round still tempers the prior (it is an average, not the latest
        # posterior).
        assert 0.4 < belief < 0.95
        assert len(evolving.history) == 2
        assert evolving.priors.evidence_count("p2->p3", INTRO_ATTRIBUTE) == 2

    def test_shared_prior_store_is_used(self):
        store = PriorBeliefStore()
        store.set_prior("p2->p4", INTRO_ATTRIBUTE, 0.3)
        network = intro_example_network(with_records=False)
        evolving = EvolvingPDMS(network, priors=store, delta=0.1, ttl=3)
        assert evolving.current_belief("p2->p4", INTRO_ATTRIBUTE) == pytest.approx(0.3)
