"""Discovery-frontier contract tests for the core layer.

Two guarantees land here, mirroring ``test_plan_ir.py`` one layer up:

1. The walker-ban layering invariant: the core must reach structure
   discovery through the probe-plan frontier of
   :mod:`repro.pdms.discovery` — never by importing the enumeration
   walkers (``find_cycles_through``, ``find_all_parallel_paths``, ...)
   from :mod:`repro.pdms.probing` directly.  Structure types
   (``MappingCycle``, ``ParallelPaths``) and ``validate_ttl`` remain fair
   game; it is the *enumeration* that must flow through plans.  Since
   PR 9 the ban is stated once in :mod:`repro.lintkit.contracts`
   (``WALKER_NAMES``) and enforced by the ``layering-discovery-walkers``
   rule; this test asserts ``repro-lint`` reports zero findings for it.
2. The serial x origin-sharded parity matrix: both structure caches must
   hand back canonically identical structure sets — and the assessor
   identical posteriors — whether probes run on the serial executor or
   origin-sharded over a process pool, for fresh probes and for
   mutation-log incremental refreshes alike.
"""

import pathlib

import pytest

import repro
from repro.core.analysis import NeighborhoodStructureCache, NetworkStructureCache
from repro.core.quality import MappingQualityAssessor
from repro.generators.topologies import scale_free_network
from repro.lintkit import run_lint, rules_by_id
from repro.pdms.discovery import ProcessPoolDiscoveryExecutor

SEEDS = (1, 2, 3)

PEERS = 10


def _pooled():
    # workers=2 / min_units=1 forces real sharding even on single-core CI
    # runners, so the parity matrix always exercises the fan-out + merge.
    return ProcessPoolDiscoveryExecutor(workers=2, min_units=1)


def _canon(structures):
    return {s.canonical_key() for s in structures}


def _churn(network):
    """One incremental-refresh-friendly mutation pair: drop a mapping,
    then graft it back (both land in the mutation log — no full probe)."""
    name = sorted(network.mapping_names)[0]
    mapping = network.mapping(name)
    network.remove_mapping(name)
    network.add_mapping(mapping, bidirectional=False)


class TestCoreUsesTheDiscoveryFrontier:
    def test_no_core_module_imports_walkers_from_probing(self):
        package_dir = pathlib.Path(repro.__file__).parent
        rule = rules_by_id()["layering-discovery-walkers"]
        findings, _ = run_lint([package_dir], rules=[rule])
        offenders = [
            finding.render()
            for finding in findings
            if not finding.suppressed
        ]
        assert not offenders, (
            "core modules must discover structures via repro.pdms.discovery "
            "plans, not the repro.pdms.probing walkers:\n" + "\n".join(offenders)
        )


@pytest.mark.parametrize("ttl", [4, 6])
@pytest.mark.parametrize("seed", SEEDS)
class TestNetworkCacheParity:
    def test_fresh_and_incremental_probes_match_serial(self, seed, ttl):
        serial_net = scale_free_network(PEERS, seed=seed)
        pooled_net = scale_free_network(PEERS, seed=seed)
        serial = NetworkStructureCache(serial_net, ttl=ttl)
        pooled = NetworkStructureCache(pooled_net, ttl=ttl, probe_executor=_pooled())

        s_cycles, s_paths = serial.structures()
        p_cycles, p_paths = pooled.structures()
        assert _canon(p_cycles) == _canon(s_cycles)
        assert _canon(p_paths) == _canon(s_paths)
        assert serial.statistics.sharded_probes == 0
        assert pooled.statistics.sharded_probes >= 1
        assert pooled.statistics.work_units == len(serial_net.peer_names) * 2
        assert pooled.statistics.probe_seconds >= pooled.statistics.last_probe_seconds > 0

        _churn(serial_net)
        _churn(pooled_net)
        s_cycles, s_paths = serial.structures()
        p_cycles, p_paths = pooled.structures()
        assert serial.statistics.partial_refreshes == 1
        assert pooled.statistics.partial_refreshes == 1
        assert _canon(p_cycles) == _canon(s_cycles)
        assert _canon(p_paths) == _canon(s_paths)
        # ... and both match a from-scratch probe of the mutated network.
        fresh = NetworkStructureCache(scale_free_network(PEERS, seed=seed), ttl=ttl)
        _churn(fresh.network)
        f_cycles, f_paths = fresh.structures()
        assert _canon(s_cycles) == _canon(f_cycles)
        assert _canon(s_paths) == _canon(f_paths)


@pytest.mark.parametrize("ttl", [4, 6])
@pytest.mark.parametrize("seed", SEEDS)
class TestNeighborhoodCacheParity:
    def test_fresh_and_incremental_probes_match_serial(self, seed, ttl):
        serial_net = scale_free_network(PEERS, seed=seed)
        pooled_net = scale_free_network(PEERS, seed=seed)
        serial = NeighborhoodStructureCache(serial_net, ttl=ttl)
        pooled = NeighborhoodStructureCache(
            pooled_net, ttl=ttl, probe_executor=_pooled()
        )
        origins = list(serial_net.peer_names)[:4]

        # warm() lowers all pending origins onto ONE sharded plan but must
        # keep the per-origin accounting of individual structures_for calls.
        pooled.warm(origins)
        assert pooled.statistics.probes == len(origins)
        assert pooled.statistics.sharded_probes >= 1
        for origin in origins:
            s_cycles, s_paths = serial.structures_for(origin)
            p_cycles, p_paths = pooled.structures_for(origin)
            assert _canon(p_cycles) == _canon(s_cycles), origin
            assert _canon(p_paths) == _canon(s_paths), origin
        assert pooled.statistics.probes == len(origins)
        assert serial.statistics.probes == len(origins)
        assert serial.statistics.sharded_probes == 0

        _churn(serial_net)
        _churn(pooled_net)
        for origin in origins:
            s_cycles, s_paths = serial.structures_for(origin)
            p_cycles, p_paths = pooled.structures_for(origin)
            assert _canon(p_cycles) == _canon(s_cycles), origin
            assert _canon(p_paths) == _canon(s_paths), origin
        assert serial.statistics.partial_refreshes == len(origins)
        assert pooled.statistics.partial_refreshes == len(origins)


@pytest.mark.parametrize("seed", SEEDS)
class TestAssessorParity:
    def test_posteriors_identical_across_probe_executors(self, seed):
        serial_net = scale_free_network(PEERS, seed=seed)
        pooled_net = scale_free_network(PEERS, seed=seed)
        serial = MappingQualityAssessor(serial_net, ttl=4)
        pooled = MappingQualityAssessor(
            pooled_net, ttl=4, probe_executor=_pooled()
        )
        serial_result = serial.assess_all_attributes()
        pooled_result = pooled.assess_all_attributes()
        assert serial_result.keys() == pooled_result.keys()
        for attribute in serial_result:
            assert (
                pooled_result[attribute].posteriors
                == serial_result[attribute].posteriors
            ), attribute
