"""Unit tests for per-peer local factor graphs."""

import pytest

from repro.core.local_graph import build_local_graphs, mapping_owner
from repro.exceptions import FeedbackError, PDMSError
from repro.generators.paper import figure4_feedbacks, intro_example_feedbacks


class TestMappingOwner:
    def test_owner_is_source_peer(self):
        assert mapping_owner("p2->p3") == "p2"
        assert mapping_owner("ref101->fr221") == "ref101"

    def test_malformed_name_rejected(self):
        with pytest.raises(PDMSError):
            mapping_owner("not-a-mapping")


class TestBuildLocalGraphs:
    def test_every_owner_gets_a_fragment(self):
        fragments = build_local_graphs(intro_example_feedbacks())
        # Owners of the mappings in the §4.5 feedbacks: p1, p2, p3, p4.
        assert set(fragments) == {"p1", "p2", "p3", "p4"}

    def test_owned_mappings_are_outgoing(self):
        fragments = build_local_graphs(intro_example_feedbacks())
        assert set(fragments["p2"].owned_mappings) == {"p2->p3", "p2->p4"}
        assert set(fragments["p1"].owned_mappings) == {"p1->p2"}

    def test_fragment_holds_feedbacks_involving_owned_mappings(self):
        fragments = build_local_graphs(intro_example_feedbacks())
        p3_feedback_ids = {f.identifier for f in fragments["p3"].feedbacks}
        # p3 owns p3->p4 which appears in f1 and f3=>.
        assert p3_feedback_ids == {"f1", "f3=>"}

    def test_remote_participants_point_to_other_owners(self):
        fragments = build_local_graphs(intro_example_feedbacks())
        remote = fragments["p2"].remote_participants
        assert remote["f1"] == {"p1->p2": "p1", "p3->p4": "p3", "p4->p1": "p4"}
        assert "p2->p3" not in remote["f1"]

    def test_remote_peers_listed(self):
        fragments = build_local_graphs(intro_example_feedbacks())
        assert set(fragments["p2"].remote_peers) == {"p1", "p3", "p4"}

    def test_feedbacks_for_mapping(self):
        fragments = build_local_graphs(intro_example_feedbacks())
        ids = {f.identifier for f in fragments["p2"].feedbacks_for("p2->p4")}
        assert ids == {"f2", "f3=>"}

    def test_explicit_owner_override(self):
        owners = {name: "hub" for f in figure4_feedbacks() for name in f.mapping_names}
        fragments = build_local_graphs(figure4_feedbacks(), owners=owners)
        assert set(fragments) == {"hub"}
        assert len(fragments["hub"].owned_mappings) == 5
        assert fragments["hub"].remote_peers == ()

    def test_requires_informative_feedback(self):
        from repro.core.feedback import Feedback, FeedbackKind, StructureKind

        neutral = Feedback(
            identifier="n",
            kind=FeedbackKind.NEUTRAL,
            structure=StructureKind.CYCLE,
            mapping_names=("a->b", "b->a"),
            attribute="X",
        )
        with pytest.raises(FeedbackError):
            build_local_graphs([neutral])

    def test_materialised_factor_graph_matches_figure6(self):
        """Figure 6: p1's local graph for the directed example has its owned
        variable (p1->p2 here, m12 in the paper), its prior, and the replicas
        of the feedback factors involving it, spanning the remote variables."""
        fragments = build_local_graphs(intro_example_feedbacks())
        graph = fragments["p1"].to_factor_graph(priors=0.5, delta=0.1)
        assert graph.has_variable("m[p1->p2]@Creator")
        assert graph.has_factor("prior(m[p1->p2]@Creator)")
        # Remote variables appear but carry no prior factor locally.
        assert graph.has_variable("m[p2->p3]@Creator")
        assert not graph.has_factor("prior(m[p2->p3]@Creator)")
        assert graph.has_factor("feedback(f1)")
        assert graph.has_factor("feedback(f2)")
