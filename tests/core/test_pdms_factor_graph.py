"""Unit tests for PDMS factor-graph construction."""

import pytest

from repro.core.beliefs import PriorBeliefStore
from repro.core.feedback import FeedbackKind
from repro.core.pdms_factor_graph import (
    build_factor_graph,
    build_factor_graph_from_evidence,
    variable_name_for,
)
from repro.core.analysis import analyze_network
from repro.exceptions import FactorGraphError, FeedbackError
from repro.factorgraph.exact import exact_marginals
from repro.generators.paper import (
    figure4_feedbacks,
    intro_example_feedbacks,
    intro_example_network,
    single_cycle_feedback,
)


class TestBuildFactorGraph:
    def test_structure_matches_paper_figure4(self):
        """Figure 4: five mapping variables, five prior factors, three
        feedback factors."""
        pfg = build_factor_graph(figure4_feedbacks(), priors=0.5, delta=0.1)
        assert len(pfg.graph.variables) == 5
        assert len(pfg.graph.factors) == 8
        assert set(pfg.mapping_names) == {
            "p1->p2",
            "p2->p3",
            "p3->p4",
            "p4->p1",
            "p2->p4",
        }

    def test_variable_names_are_fine_grained(self):
        pfg = build_factor_graph(figure4_feedbacks(), priors=0.5)
        assert pfg.variable_name("p1->p2") == "m[p1->p2]@Creator"
        assert pfg.has_mapping("p2->p4")
        assert not pfg.has_mapping("p9->p9")

    def test_unknown_mapping_variable_raises(self):
        pfg = build_factor_graph(figure4_feedbacks(), priors=0.5)
        with pytest.raises(FactorGraphError):
            pfg.variable_name("zz->zz")

    def test_single_cycle_graph_is_tree(self):
        pfg = build_factor_graph([single_cycle_feedback(5)], priors=0.5)
        assert pfg.graph.is_tree()

    def test_figure4_graph_is_loopy(self):
        pfg = build_factor_graph(figure4_feedbacks(), priors=0.5)
        assert not pfg.graph.is_tree()

    def test_priors_from_dict(self):
        priors = {"p1->p2": 0.9}
        pfg = build_factor_graph(figure4_feedbacks(), priors=priors, delta=0.1)
        prior_factor = pfg.graph.factor("prior(m[p1->p2]@Creator)")
        assert prior_factor.table[0] == pytest.approx(0.9)
        default_factor = pfg.graph.factor("prior(m[p2->p3]@Creator)")
        assert default_factor.table[0] == pytest.approx(0.5)

    def test_priors_from_store(self):
        store = PriorBeliefStore()
        store.set_prior("p2->p4", "Creator", 0.2)
        pfg = build_factor_graph(figure4_feedbacks(), priors=store, delta=0.1)
        assert pfg.graph.factor("prior(m[p2->p4]@Creator)").table[0] == pytest.approx(0.2)

    def test_requires_informative_feedback(self):
        neutral = [
            f for f in intro_example_feedbacks() if f.kind is FeedbackKind.NEUTRAL
        ]
        with pytest.raises(FeedbackError):
            build_factor_graph(neutral, priors=0.5)

    def test_mixed_attributes_rejected(self):
        feedbacks = [single_cycle_feedback(3, attribute="A"), single_cycle_feedback(3, attribute="B")]
        with pytest.raises(FeedbackError):
            build_factor_graph(feedbacks)

    def test_invalid_delta_rejected(self):
        with pytest.raises(FeedbackError):
            build_factor_graph(figure4_feedbacks(), delta=2.0)


class TestSection45Numbers:
    """The worked example of §4.5: exact inference reproduces the paper's
    posteriors almost to the digit."""

    def test_exact_posteriors_match_paper(self):
        pfg = build_factor_graph(intro_example_feedbacks(), priors=0.5, delta=0.1)
        exact = exact_marginals(pfg.graph)
        p23 = float(exact[variable_name_for("p2->p3", "Creator")][0])
        p24 = float(exact[variable_name_for("p2->p4", "Creator")][0])
        # Paper: 0.59 and 0.3.
        assert p23 == pytest.approx(0.59, abs=0.01)
        assert p24 == pytest.approx(0.30, abs=0.02)

    def test_faulty_mapping_ranked_last(self):
        pfg = build_factor_graph(intro_example_feedbacks(), priors=0.5, delta=0.1)
        exact = exact_marginals(pfg.graph)
        posteriors = {
            name: float(exact[variable_name_for(name, "Creator")][0])
            for name in pfg.mapping_names
        }
        assert min(posteriors, key=posteriors.get) == "p2->p4"


class TestBuildFromEvidence:
    def test_evidence_pipeline(self):
        network = intro_example_network(with_records=False)
        evidence = analyze_network(network, "Creator", ttl=4)
        pfg = build_factor_graph_from_evidence(evidence, priors=0.5, delta=0.1)
        assert pfg.attribute == "Creator"
        assert "p2->p4" in pfg.mapping_names
        exact = exact_marginals(pfg.graph)
        p24 = float(exact[variable_name_for("p2->p4", "Creator")][0])
        p23 = float(exact[variable_name_for("p2->p3", "Creator")][0])
        assert p24 < 0.5 < p23
