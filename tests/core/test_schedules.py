"""Unit tests for the periodic and lazy message-passing schedules."""

import pytest

from repro.core.embedded import EmbeddedMessagePassing, EmbeddedOptions
from repro.core.schedules import LazySchedule, PeriodicSchedule
from repro.exceptions import ReproError
from repro.generators.paper import intro_example_feedbacks, intro_example_network
from repro.pdms.query import Query, substring_predicate
from repro.pdms.routing import QueryRouter, RoutingPolicy


def make_engine(**options):
    return EmbeddedMessagePassing(
        intro_example_feedbacks(),
        priors=0.5,
        delta=0.1,
        options=EmbeddedOptions(max_rounds=200, **options),
    )


class TestPeriodicSchedule:
    def test_runs_until_convergence(self):
        schedule = PeriodicSchedule(make_engine(), tau=5.0)
        report = schedule.run(periods=100, tolerance=1e-3)
        assert report.converged
        assert report.rounds < 100
        assert report.elapsed_time == pytest.approx(report.rounds * 5.0)

    def test_message_accounting(self):
        engine = make_engine()
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=3, tolerance=1e-12, stop_on_convergence=False)
        assert report.rounds == 3
        assert report.messages_attempted > 0
        assert report.messages_per_round == pytest.approx(report.messages_attempted / 3)

    def test_estimated_messages_per_period(self):
        engine = make_engine()
        schedule = PeriodicSchedule(engine, tau=1.0)
        # Paper bound: Σ_ci (l_ci − 1) over the structures through the peer.
        # p2 participates in f1 (length 4 → 3 remote messages), f2 (3 → 2)
        # and f3=> (3 mappings, 2 of them owned by p2 → 2 remote messages).
        assert schedule.estimated_messages_per_period("p2") == 7
        assert schedule.estimated_messages_per_period("unknown-peer") == 0

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            PeriodicSchedule(make_engine(), tau=0.0)
        with pytest.raises(ReproError):
            PeriodicSchedule(make_engine(), tau=1.0).run(periods=0)

    def test_posterior_history_recorded(self):
        schedule = PeriodicSchedule(make_engine(), tau=1.0)
        report = schedule.run(periods=5, tolerance=1e-12, stop_on_convergence=False)
        assert len(report.posterior_history) == 5


class TestLazySchedule:
    def _traces(self, count=40, seed=3):
        import random

        network = intro_example_network(with_records=True)
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        rng = random.Random(seed)
        traces = []
        for _ in range(count):
            origin = rng.choice(network.peer_names)
            query = Query.select_project(
                origin,
                project=["Creator"],
                where={"Subject": substring_predicate("river")},
            )
            traces.append(router.route(query, origin=origin))
        return traces

    def test_piggybacking_converges_to_the_same_posteriors(self):
        reference = make_engine().run().posteriors
        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        report = schedule.process_traces(self._traces(count=80), tolerance=1e-4)
        assert report.rounds > 1
        for name, value in lazy_engine.posteriors().items():
            assert value == pytest.approx(reference[name], abs=0.05)

    def test_only_traversed_mappings_trigger_messages(self):
        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        trace = self._traces(count=1)[0]
        schedule.process_trace(trace)
        assert schedule.processed_queries == 1
        assert schedule.piggybacked_mappings <= len(trace.used_mappings())

    def test_trace_without_known_mappings_is_a_noop(self):
        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        from repro.pdms.trace import QueryTrace

        empty_trace = QueryTrace(query_id=1, origin="p2")
        assert schedule.process_trace(empty_trace) == 0.0
        assert schedule.piggybacked_mappings == 0
