"""Unit tests for the periodic and lazy message-passing schedules."""

import pytest

from repro.core.embedded import EmbeddedMessagePassing, EmbeddedOptions
from repro.core.schedules import LazySchedule, PeriodicSchedule
from repro.exceptions import ReproError
from repro.generators.paper import intro_example_feedbacks, intro_example_network
from repro.pdms.query import Query, substring_predicate
from repro.pdms.routing import QueryRouter, RoutingPolicy


def make_engine(**options):
    return EmbeddedMessagePassing(
        intro_example_feedbacks(),
        priors=0.5,
        delta=0.1,
        options=EmbeddedOptions(max_rounds=200, **options),
    )


class TestPeriodicSchedule:
    def test_runs_until_convergence(self):
        schedule = PeriodicSchedule(make_engine(), tau=5.0)
        report = schedule.run(periods=100, tolerance=1e-3)
        assert report.converged
        assert report.rounds < 100
        assert report.elapsed_time == pytest.approx(report.rounds * 5.0)

    def test_message_accounting(self):
        engine = make_engine()
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=3, tolerance=1e-12, stop_on_convergence=False)
        assert report.rounds == 3
        assert report.messages_attempted > 0
        assert report.messages_per_round == pytest.approx(report.messages_attempted / 3)

    def test_estimated_messages_per_period(self):
        engine = make_engine()
        schedule = PeriodicSchedule(engine, tau=1.0)
        # Paper bound: Σ_ci (l_ci − 1) over the structures through the peer.
        # p2 participates in f1 (length 4 → 3 remote messages), f2 (3 → 2)
        # and f3=> (3 mappings, 2 of them owned by p2 → 2 remote messages).
        assert schedule.estimated_messages_per_period("p2") == 7
        assert schedule.estimated_messages_per_period("unknown-peer") == 0

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            PeriodicSchedule(make_engine(), tau=0.0)
        with pytest.raises(ReproError):
            PeriodicSchedule(make_engine(), tau=1.0).run(periods=0)

    def test_posterior_history_recorded(self):
        schedule = PeriodicSchedule(make_engine(), tau=1.0)
        report = schedule.run(periods=5, tolerance=1e-12, stop_on_convergence=False)
        assert len(report.posterior_history) == 5


class _ScriptedEngine:
    """Minimal engine double replaying a fixed sequence of round changes."""

    def __init__(self, changes, send_probability=1.0, tolerance=1e-6):
        from repro.core.embedded import EmbeddedOptions, MessageTransport

        self._changes = list(changes)
        self._round = 0
        self.options = EmbeddedOptions(tolerance=tolerance)
        self.transport = MessageTransport(send_probability)
        self.mapping_names = ("p1->p2",)

    def run_round(self, mapping_names=None):
        change = self._changes[min(self._round, len(self._changes) - 1)]
        self._round += 1
        return change

    def posteriors(self):
        return {"p1->p2": 0.5}


class TestPeriodicConvergenceReporting:
    def test_quiet_then_loud_rounds_are_not_reported_converged(self):
        """Regression: one early quiet round used to latch converged=True
        even when later rounds exceeded tolerance again."""
        engine = _ScriptedEngine([1e-9, 0.5, 0.5])
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=3, tolerance=1e-6, stop_on_convergence=False)
        assert report.rounds == 3
        assert not report.converged
        assert report.final_change == pytest.approx(0.5)

    def test_quiet_final_rounds_are_reported_converged(self):
        engine = _ScriptedEngine([0.5, 0.5, 1e-9])
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=3, tolerance=1e-6, stop_on_convergence=False)
        assert report.converged
        assert report.final_change == pytest.approx(1e-9)

    def test_lossy_transport_needs_consecutive_quiet_rounds(self):
        """Mirrors EmbeddedMessagePassing.run: at P(send)=0.5 a single quiet
        round may just mean the informative messages were dropped."""
        engine = _ScriptedEngine([0.0, 0.0, 0.0, 0.5], send_probability=0.5)
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=4, tolerance=1e-6, stop_on_convergence=False)
        # required quiet rounds = max(2, round(2/0.5)) = 4; the loud final
        # round resets the count.
        assert not report.converged

        engine = _ScriptedEngine([0.0] * 4, send_probability=0.5)
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=4, tolerance=1e-6)
        assert report.converged
        assert report.rounds == 4

    def test_lossless_stop_on_convergence_unchanged(self):
        engine = _ScriptedEngine([0.5, 1e-9, 0.5])
        schedule = PeriodicSchedule(engine, tau=1.0)
        report = schedule.run(periods=10, tolerance=1e-6)
        assert report.converged
        assert report.rounds == 2


class TestLazySchedule:
    def _traces(self, count=40, seed=3):
        import random

        network = intro_example_network(with_records=True)
        router = QueryRouter(network, policy=RoutingPolicy(default_threshold=0.0))
        rng = random.Random(seed)
        traces = []
        for _ in range(count):
            origin = rng.choice(network.peer_names)
            query = Query.select_project(
                origin,
                project=["Creator"],
                where={"Subject": substring_predicate("river")},
            )
            traces.append(router.route(query, origin=origin))
        return traces

    def test_piggybacking_converges_to_the_same_posteriors(self):
        reference = make_engine().run().posteriors
        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        report = schedule.process_traces(self._traces(count=80), tolerance=1e-4)
        assert report.rounds > 1
        for name, value in lazy_engine.posteriors().items():
            assert value == pytest.approx(reference[name], abs=0.05)

    def test_only_traversed_mappings_trigger_messages(self):
        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        trace = self._traces(count=1)[0]
        schedule.process_trace(trace)
        assert schedule.processed_queries == 1
        assert schedule.piggybacked_mappings <= len(trace.used_mappings())

    def test_trace_without_known_mappings_is_a_noop(self):
        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        from repro.pdms.trace import QueryTrace

        empty_trace = QueryTrace(query_id=1, origin="p2")
        assert schedule.process_trace(empty_trace) == 0.0
        assert schedule.piggybacked_mappings == 0

    def test_irrelevant_traces_do_not_fake_convergence(self):
        """Regression: traces that piggyback zero relevant mappings used to
        count as quiet rounds (change 0.0 < tolerance), so a workload that
        skirts the feedback graph falsely claimed convergence."""
        from repro.pdms.trace import QueryTrace

        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        idle = [QueryTrace(query_id=i, origin="p2") for i in range(10)]
        report = schedule.process_traces(idle, tolerance=1e-3)
        assert schedule.processed_queries == 10
        assert report.rounds == 0
        assert not report.converged

    def test_irrelevant_traces_do_not_advance_the_quiet_count(self):
        """An idle trace interleaved with real traffic must not contribute a
        fake quiet round to the convergence check."""
        from repro.pdms.trace import QueryTrace

        lazy_engine = make_engine()
        schedule = LazySchedule(lazy_engine)
        real = self._traces(count=1)[0]
        idle = QueryTrace(query_id=99, origin="p2")
        report = schedule.process_traces([real, idle, idle, idle], tolerance=1e-3)
        # Only the single real trace ran a round; one round is never enough
        # for the rounds > 1 convergence rule.
        assert report.rounds == 1
        assert not report.converged
