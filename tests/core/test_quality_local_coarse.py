"""Tests for the per-peer local assessment and the coarse-granularity mode."""

import pytest

from repro.core.quality import MappingQualityAssessor
from repro.generators.paper import intro_example_network


@pytest.fixture(scope="module")
def network():
    return intro_example_network(with_records=False)


class TestAssessLocal:
    def test_local_view_flags_p2s_faulty_mapping(self, network):
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        local = assessor.assess_local("p2", "Creator")
        # Only p2's own outgoing mappings are returned.
        assert set(local) <= {"p2->p1", "p2->p3", "p2->p4"}
        assert local["p2->p4"] < 0.5
        assert local["p2->p3"] > 0.5

    def test_local_view_without_evidence_returns_priors(self, network):
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=1)
        # TTL 1 discovers no cycle or parallel path at all.
        local = assessor.assess_local("p2", "Creator")
        assert local
        assert all(value == pytest.approx(0.5) for value in local.values())

    def test_local_view_respects_parallel_path_switch(self, network):
        cycles_only = MappingQualityAssessor(
            network, delta=0.1, ttl=4, include_parallel_paths=False
        ).assess_local("p2", "Creator")
        with_paths = MappingQualityAssessor(
            network, delta=0.1, ttl=4, include_parallel_paths=True
        ).assess_local("p2", "Creator")
        # Both views agree on the verdict even if the exact numbers differ.
        assert cycles_only["p2->p4"] < 0.5
        assert with_paths["p2->p4"] < 0.5


class TestCoarseGranularity:
    def test_faulty_mapping_scores_below_clean_ones(self, network):
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=4)
        for attribute in ("Creator", "Title", "Subject"):
            assessor.assess_attribute(attribute)
        faulty = assessor.assess_mapping("p2->p4", attributes=("Creator", "Title", "Subject"))
        clean = assessor.assess_mapping("p2->p3", attributes=("Creator", "Title", "Subject"))
        assert faulty < clean
        # The faulty mapping is only wrong for one of its eleven attributes,
        # so its coarse score sits between "all wrong" and "all right".
        assert 0.3 < faulty < 0.95
        assert clean > 0.9

    def test_defaults_to_all_mapped_attributes(self, network):
        assessor = MappingQualityAssessor(network, delta=0.1, ttl=3)
        value = assessor.assess_mapping("p2->p3")
        assert 0.0 <= value <= 1.0
