"""Unit tests for the embedded decentralised message passing."""

import pytest

from repro.core.embedded import (
    EmbeddedMessagePassing,
    EmbeddedOptions,
    MessageTransport,
)
from repro.core.beliefs import PriorBeliefStore
from repro.core.pdms_factor_graph import build_factor_graph, variable_name_for
from repro.exceptions import ConvergenceError, FeedbackError
from repro.factorgraph.sum_product import run_sum_product
from repro.generators.paper import (
    figure4_feedbacks,
    intro_example_feedbacks,
    single_cycle_feedback,
)


class TestConstruction:
    def test_requires_informative_feedback(self):
        from repro.core.feedback import Feedback, FeedbackKind, StructureKind

        neutral = Feedback(
            identifier="n",
            kind=FeedbackKind.NEUTRAL,
            structure=StructureKind.CYCLE,
            mapping_names=("a->b", "b->a"),
            attribute="X",
        )
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing([neutral])

    def test_mapping_and_peer_inventories(self):
        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5)
        assert set(engine.mapping_names) == {
            "p1->p2",
            "p2->p3",
            "p3->p4",
            "p4->p1",
            "p2->p4",
        }
        assert set(engine.peer_names) == {"p1", "p2", "p3", "p4"}
        assert engine.owner_of("p2->p4") == "p2"

    def test_options_validation(self):
        with pytest.raises(FeedbackError):
            EmbeddedOptions(max_rounds=0)
        with pytest.raises(FeedbackError):
            EmbeddedOptions(tolerance=0)

    def test_transport_validation(self):
        with pytest.raises(FeedbackError):
            MessageTransport(send_probability=0.0)

    def test_prior_store_constructor(self):
        store = PriorBeliefStore()
        store.set_prior("p2->p4", "Creator", 0.2)
        engine = EmbeddedMessagePassing.from_prior_store(
            intro_example_feedbacks(), store
        )
        assert engine._prior_vectors["p2->p4"][0] == pytest.approx(0.2)
        assert engine._prior_vectors["p2->p3"][0] == pytest.approx(0.5)


class TestSection45:
    def test_posteriors_flag_the_faulty_mapping(self):
        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5, delta=0.1)
        result = engine.run()
        assert result.converged
        assert result.posteriors["p2->p4"] < 0.5
        assert result.posteriors["p2->p3"] > 0.5
        # Paper: 0.59 / 0.3 (exact); the embedded loopy estimate lands close.
        assert result.posteriors["p2->p3"] == pytest.approx(0.59, abs=0.06)
        assert result.posteriors["p2->p4"] == pytest.approx(0.30, abs=0.06)

    def test_converges_in_a_handful_of_iterations(self):
        engine = EmbeddedMessagePassing(
            intro_example_feedbacks(),
            priors=0.5,
            delta=0.1,
            options=EmbeddedOptions(tolerance=1e-3),
        )
        result = engine.run()
        assert result.converged
        assert result.iterations <= 15


class TestEquivalenceWithCentralisedBP:
    def test_fixed_point_matches_centralised_sum_product(self):
        """The decentralised scheme exchanges exactly the messages of loopy
        BP on the global factor graph, so the fixed points must agree."""
        feedbacks = figure4_feedbacks()
        engine = EmbeddedMessagePassing(
            feedbacks, priors=0.7, delta=0.1, options=EmbeddedOptions(max_rounds=100, tolerance=1e-8)
        )
        embedded = engine.run().posteriors
        graph = build_factor_graph(feedbacks, priors=0.7, delta=0.1).graph
        centralised = run_sum_product(graph, max_iterations=200, tolerance=1e-10)
        for mapping_name, posterior in embedded.items():
            reference = centralised.probability_correct(
                variable_name_for(mapping_name, "Creator")
            )
            assert posterior == pytest.approx(reference, abs=1e-3)

    def test_tree_case_is_exact_after_two_rounds(self):
        """Single-cycle factor graphs are trees: two rounds give the exact
        marginals (paper §4.3)."""
        from repro.factorgraph.exact import exact_marginals

        feedback = single_cycle_feedback(4)
        engine = EmbeddedMessagePassing(
            [feedback], priors=0.5, delta=0.1, options=EmbeddedOptions(max_rounds=2, tolerance=1e-12)
        )
        result = engine.run()
        graph = build_factor_graph([feedback], priors=0.5, delta=0.1).graph
        exact = exact_marginals(graph)
        for mapping_name, posterior in result.posteriors.items():
            assert posterior == pytest.approx(
                float(exact[variable_name_for(mapping_name, "Creator")][0]), abs=1e-9
            )


class TestMessageLoss:
    def test_lossy_run_reaches_same_posteriors(self):
        reliable = EmbeddedMessagePassing(
            figure4_feedbacks(), priors=0.8, delta=0.1,
            options=EmbeddedOptions(max_rounds=200, tolerance=1e-8),
        ).run()
        lossy = EmbeddedMessagePassing(
            figure4_feedbacks(),
            priors=0.8,
            delta=0.1,
            transport=MessageTransport(0.3, seed=11),
            options=EmbeddedOptions(max_rounds=2000, tolerance=1e-8),
        ).run()
        assert lossy.converged
        for name in reliable.posteriors:
            assert lossy.posteriors[name] == pytest.approx(
                reliable.posteriors[name], abs=0.01
            )

    def test_lossy_run_takes_more_iterations(self):
        reliable = EmbeddedMessagePassing(
            figure4_feedbacks(), priors=0.8, delta=0.1,
            options=EmbeddedOptions(max_rounds=500, tolerance=1e-6),
        ).run()
        lossy = EmbeddedMessagePassing(
            figure4_feedbacks(), priors=0.8, delta=0.1,
            transport=MessageTransport(0.2, seed=5),
            options=EmbeddedOptions(max_rounds=2000, tolerance=1e-6),
        ).run()
        assert lossy.iterations > reliable.iterations

    def test_transport_statistics_recorded(self):
        engine = EmbeddedMessagePassing(
            figure4_feedbacks(), priors=0.8, delta=0.1,
            transport=MessageTransport(0.5, seed=1),
            options=EmbeddedOptions(max_rounds=20),
        )
        engine.run()
        stats = engine.transport.statistics
        assert stats.attempted > 0
        assert stats.delivered + stats.dropped == stats.attempted
        assert 0.2 < stats.delivery_rate < 0.8


class TestCompiledKernels:
    def test_batches_cover_every_feedback_replica(self):
        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5)
        batched = sum(batch.size for batch, _, _ in engine._batches)
        assert batched == len(engine._feedbacks)

    def test_factor_sweep_matches_scalar_reference(self):
        """The batched einsum sweep must reproduce the scalar
        Factor.message_to computation it replaced, message for message."""
        import numpy as np

        from repro.factorgraph.messages import normalize

        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5, delta=0.1)
        engine.run_round()  # make the state non-trivial
        engine._compute_variable_messages()
        engine._exchange_messages()

        # Scalar reference, computed before the batched sweep mutates _f2v.
        expected = {}
        for mapping_name, per_feedback in engine._f2v.items():
            owner = engine._owners[mapping_name]
            for feedback_id in per_feedback:
                factor = engine._factors[feedback_id]
                feedback = engine._feedback_by_id[feedback_id]
                incoming = {}
                for other_mapping in feedback.mapping_names:
                    if other_mapping == mapping_name:
                        continue
                    other_variable = variable_name_for(other_mapping, engine.attribute)
                    if engine._owners[other_mapping] == owner:
                        incoming[other_variable] = engine._v2f[other_mapping][feedback_id]
                    else:
                        incoming[other_variable] = engine._received[owner][
                            (feedback_id, other_mapping)
                        ]
                target = variable_name_for(mapping_name, engine.attribute)
                expected[(mapping_name, feedback_id)] = normalize(
                    factor.message_to(target, incoming)
                )

        engine._compute_factor_messages()
        for (mapping_name, feedback_id), reference in expected.items():
            actual = engine._f2v[mapping_name][feedback_id]
            assert np.abs(actual - reference).max() < 1e-12


class TestArrayDictParity:
    """The array state must replay the dict state's runs exactly."""

    @pytest.mark.parametrize("send_probability", [1.0, 0.7, 0.3])
    def test_fixed_round_posterior_parity(self, send_probability):
        engines = {}
        for backend in ("dicts", "arrays"):
            engine = EmbeddedMessagePassing(
                figure4_feedbacks(),
                priors=0.7,
                delta=0.1,
                transport=MessageTransport(send_probability, seed=17),
                backend=backend,
            )
            for _ in range(40):
                engine.run_round()
            engines[backend] = engine
        dict_posteriors = engines["dicts"].posteriors()
        array_posteriors = engines["arrays"].posteriors()
        assert dict_posteriors.keys() == array_posteriors.keys()
        for name, value in dict_posteriors.items():
            assert abs(array_posteriors[name] - value) <= 1e-12

    @pytest.mark.parametrize("send_probability", [1.0, 0.5])
    def test_transport_statistics_parity(self, send_probability):
        """Identical seeds must consume the rng identically: same attempted,
        same delivered, i.e. the same drop decisions in the same order."""
        stats = {}
        for backend in ("dicts", "arrays"):
            engine = EmbeddedMessagePassing(
                figure4_feedbacks(),
                priors=0.7,
                delta=0.1,
                transport=MessageTransport(send_probability, seed=23),
                backend=backend,
            )
            for _ in range(10):
                engine.run_round()
            stats[backend] = engine.transport.statistics
        assert stats["dicts"].attempted == stats["arrays"].attempted
        assert stats["dicts"].delivered == stats["arrays"].delivered
        assert stats["dicts"].dropped == stats["arrays"].dropped

    def test_run_parity(self):
        results = {}
        for backend in ("dicts", "arrays"):
            engine = EmbeddedMessagePassing(
                intro_example_feedbacks(),
                priors=0.5,
                delta=0.1,
                transport=MessageTransport(0.8, seed=3),
                options=EmbeddedOptions(max_rounds=200, tolerance=1e-8),
                backend=backend,
            )
            results[backend] = engine.run()
        assert results["dicts"].iterations == results["arrays"].iterations
        assert results["dicts"].converged == results["arrays"].converged
        for name, value in results["dicts"].posteriors.items():
            assert abs(results["arrays"].posteriors[name] - value) <= 1e-12

    def test_partial_round_parity(self):
        """The lazy schedule's mapping selection must behave identically,
        including which transmissions consume the transport rng."""
        selections = [["p2->p3", "p2->p4"], ["p1->p2"], None, ["p3->p4"]]
        posteriors = {}
        for backend in ("dicts", "arrays"):
            engine = EmbeddedMessagePassing(
                intro_example_feedbacks(),
                priors=0.5,
                delta=0.1,
                transport=MessageTransport(0.6, seed=9),
                backend=backend,
            )
            for selection in selections:
                engine.run_round(mapping_names=selection)
            posteriors[backend] = engine.posteriors()
        for name, value in posteriors["dicts"].items():
            assert abs(posteriors["arrays"][name] - value) <= 1e-12

    def test_dict_views_expose_message_state(self):
        """The array backend keeps `_f2v` / `_v2f` / `_received` readable as
        the nested dicts they used to be."""
        import numpy as np

        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5)
        engine.run_round()
        assert set(engine._f2v) == set(engine.mapping_names)
        for mapping_name, per_feedback in engine._f2v.items():
            assert len(per_feedback) > 0
            for feedback_id, message in per_feedback.items():
                assert message.shape == (2,)
                assert np.isclose(message.sum(), 1.0)
        for peer, incoming in engine._received.items():
            for (feedback_id, mapping_name), message in incoming.items():
                assert engine.owner_of(mapping_name) != peer
                assert message.shape == (2,)

    def test_unknown_backend_rejected(self):
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing(
                intro_example_feedbacks(), priors=0.5, backend="sparse"
            )


class TestPriorValidation:
    def test_out_of_range_float_prior_rejected(self):
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing(intro_example_feedbacks(), priors=1.5)
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing(intro_example_feedbacks(), priors=-0.1)

    def test_boolean_prior_rejected(self):
        # bool is an int subclass: True would silently mean "certainly
        # correct" — reject it with a descriptive error instead.
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing(intro_example_feedbacks(), priors=True)

    def test_invalid_dict_prior_rejected(self):
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing(
                intro_example_feedbacks(), priors={"p2->p4": 2.0}
            )
        with pytest.raises(FeedbackError):
            EmbeddedMessagePassing(
                intro_example_feedbacks(), priors={"p2->p4": False}
            )

    def test_boundary_priors_accepted(self):
        engine = EmbeddedMessagePassing(
            intro_example_feedbacks(), priors={"p2->p4": 0.0, "p2->p3": 1.0}
        )
        assert engine._prior_vectors["p2->p4"][0] == pytest.approx(1e-9)
        assert engine._prior_vectors["p2->p3"][0] == pytest.approx(1.0)


class TestTransportStatistics:
    def test_record_many_with_zero_attempts_is_a_noop(self):
        """Regression: an idle batch must leave the tallies (and the
        delivery rate) well-defined instead of risking a 0/0."""
        from repro.core.embedded import TransportStatistics

        stats = TransportStatistics()
        stats.record_many(0, 0)
        assert stats.attempted == 0
        assert stats.delivered == 0
        assert stats.dropped == 0
        assert stats.delivery_rate == 1.0

    def test_record_many_rejects_invalid_batches(self):
        from repro.core.embedded import TransportStatistics

        stats = TransportStatistics()
        with pytest.raises(FeedbackError):
            stats.record_many(-1, 0)
        with pytest.raises(FeedbackError):
            stats.record_many(2, 3)
        with pytest.raises(FeedbackError):
            stats.record_many(2, -1)
        # Nothing was recorded by the rejected calls.
        assert stats.attempted == 0

    def test_record_many_accumulates(self):
        from repro.core.embedded import TransportStatistics

        stats = TransportStatistics()
        stats.record_many(10, 7)
        stats.record_many(0, 0)
        stats.record_many(5, 5)
        assert stats.attempted == 15
        assert stats.delivered == 12
        assert stats.dropped == 3
        assert stats.delivery_rate == pytest.approx(0.8)


class TestResultAccessors:
    def test_unknown_mapping_raises_descriptive_error(self):
        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5)
        result = engine.run()
        with pytest.raises(FeedbackError, match="p9->p10"):
            result.probability_correct("p9->p10")
        with pytest.raises(FeedbackError, match="p9->p10"):
            result.history_of("p9->p10")


class TestControls:
    def test_strict_mode_raises_on_non_convergence(self):
        engine = EmbeddedMessagePassing(
            figure4_feedbacks(),
            priors=0.7,
            delta=0.1,
            options=EmbeddedOptions(max_rounds=1, tolerance=1e-12, strict=True),
        )
        with pytest.raises(ConvergenceError):
            engine.run()

    def test_history_recording(self):
        engine = EmbeddedMessagePassing(
            intro_example_feedbacks(), priors=0.5, delta=0.1,
            options=EmbeddedOptions(max_rounds=10, record_history=True),
        )
        result = engine.run()
        assert len(result.history) == result.iterations
        trajectory = result.history_of("p2->p4")
        assert len(trajectory) == result.iterations
        assert trajectory[-1] == pytest.approx(result.posteriors["p2->p4"])

    def test_partial_round_only_updates_selected_mappings(self):
        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5, delta=0.1)
        # Messages only for p2's outgoing mappings, as the lazy schedule does.
        change = engine.run_round(mapping_names=["p2->p3", "p2->p4"])
        assert change > 0.0
        posteriors = engine.posteriors()
        assert 0.0 <= posteriors["p2->p4"] <= 1.0

    def test_probability_correct_accessor(self):
        engine = EmbeddedMessagePassing(intro_example_feedbacks(), priors=0.5, delta=0.1)
        result = engine.run()
        assert result.probability_correct("p2->p4") == result.posteriors["p2->p4"]
