"""Long-cycle networks end to end: the arity-25 cliff is gone.

A network whose feedback structures span 40–64 mappings must compile and
run on every engine family — centralised vectorized, sequential embedded,
batched multi-attribute and blocked per-origin — with no sequential
fallback and no ``(2,)**arity`` table anywhere, matching the loop reference
to ``1e-9`` (lossless) and replaying the sequential rng streams bit for bit
(lossy).
"""

import numpy as np
import pytest

from repro.constants import COUNT_KERNEL_MIN_ARITY
from repro.core.analysis import analyze_network
from repro.core.embedded import EmbeddedMessagePassing, MessageTransport
from repro.core.feedback import (
    Feedback,
    FeedbackKind,
    StructureKind,
    feedback_factor,
)
from repro.core.pdms_factor_graph import build_factor_graph
from repro.core.quality import MappingQualityAssessor
from repro.evaluation.experiments import long_cycle_network
from repro.factorgraph.factors import CountFactor, Factor
from repro.factorgraph.sum_product import run_sum_product
from repro.generators.topologies import cycle_network


def _ring_evidence(network, attribute, length):
    return analyze_network(
        network, attribute, ttl=length, include_parallel_paths=False
    )


class TestFeedbackFactorCrossover:
    def _feedback(self, size):
        return Feedback(
            identifier="f1",
            kind=FeedbackKind.NEGATIVE,
            structure=StructureKind.CYCLE,
            mapping_names=tuple(f"p{i}->p{i + 1}" for i in range(size)),
            attribute="a",
        )

    def test_short_feedback_stays_dense(self):
        factor = feedback_factor(
            self._feedback(COUNT_KERNEL_MIN_ARITY - 1), delta=0.1
        )
        assert type(factor) is Factor

    def test_long_feedback_becomes_count_factor(self):
        factor = feedback_factor(
            self._feedback(COUNT_KERNEL_MIN_ARITY), delta=0.1
        )
        assert isinstance(factor, CountFactor)
        assert factor.count_values.shape == (COUNT_KERNEL_MIN_ARITY + 1,)

    def test_count_factor_matches_dense_table(self):
        size = COUNT_KERNEL_MIN_ARITY
        count_version = feedback_factor(self._feedback(size), delta=0.1)
        # Rebuild the dense CPT the historical path produced and compare.
        dense_table = count_version.table
        assert dense_table.shape == (2,) * size
        assert dense_table[(0,) * size] == pytest.approx(0.0)
        assert dense_table[(1,) + (0,) * (size - 1)] == pytest.approx(1.0)
        assert dense_table[(1, 1) + (0,) * (size - 2)] == pytest.approx(0.9)


@pytest.mark.parametrize("length", [40, 64])
class TestLongRingVsLoops:
    """A single ``length``-mapping ring on every engine vs the loop backend."""

    def _network(self, length):
        return cycle_network(length, attribute_count=4, seed=length)

    def test_lossless_all_engines_agree(self, length):
        network = self._network(length)
        attribute = network.attribute_universe()[0]
        evidence = _ring_evidence(network, attribute, length)
        informative = evidence.informative_feedbacks
        assert len(informative) == 1
        assert informative[0].size == length

        graph = build_factor_graph(
            informative, priors=0.5, attribute=attribute
        ).graph
        loops = run_sum_product(graph, backend="loops")
        vectorized = run_sum_product(graph, backend="vectorized")
        worst = max(
            float(np.abs(loops.marginals[n] - vectorized.marginals[n]).max())
            for n in loops.marginals
        )
        assert worst <= 1e-9

        # Batched multi-attribute assessor: compiles (no fallback), agrees.
        assessor = MappingQualityAssessor(
            network, delta=0.1, ttl=length, include_parallel_paths=False
        )
        assessment = assessor.assess_attributes([attribute])[attribute]
        assert assessor.plan_compile_count == 1
        plan = assessor.assessment_plan()
        assert all(batch.use_count_kernel for batch in plan.batches)
        for name, posterior in assessment.posteriors.items():
            reference = loops.probability_correct(f"m[{name}]@{attribute}")
            assert posterior == pytest.approx(reference, abs=1e-9)

        # Sequential embedded engine (the fallback path) runs too — on the
        # count kernels, never materialising a dense table.
        engine = EmbeddedMessagePassing(informative, priors=0.5, delta=0.1)
        result = engine.run()
        for name, posterior in result.posteriors.items():
            reference = loops.probability_correct(f"m[{name}]@{attribute}")
            assert posterior == pytest.approx(reference, abs=1e-9)
        for factor in engine._factors.values():
            assert isinstance(factor, CountFactor)
            assert factor._dense_table is None

        # Blocked per-origin view vs the per-origin sequential reference.
        views = assessor.assess_local_all(attribute)
        sequential = MappingQualityAssessor(
            network,
            delta=0.1,
            ttl=length,
            include_parallel_paths=False,
            use_batched_engine=False,
        )
        origin = network.peer_names[0]
        reference_view = sequential.assess_local(origin, attribute)
        assert set(views[origin]) == set(reference_view)
        for name, value in reference_view.items():
            assert views[origin][name] == pytest.approx(value, abs=1e-9)

    def test_lossy_replays_the_sequential_rng_streams(self, length):
        network = self._network(length)
        attribute = network.attribute_universe()[0]
        batched = MappingQualityAssessor(
            network,
            delta=0.1,
            ttl=length,
            include_parallel_paths=False,
            send_probability=0.7,
            seed=11,
        )
        sequential = MappingQualityAssessor(
            network,
            delta=0.1,
            ttl=length,
            include_parallel_paths=False,
            send_probability=0.7,
            seed=11,
            use_batched_engine=False,
        )
        b = batched.assess_attributes([attribute])[attribute]
        s = sequential.assess_attribute(attribute)
        assert set(b.posteriors) == set(s.posteriors)
        for name, value in s.posteriors.items():
            assert b.posteriors[name] == pytest.approx(value, abs=1e-12)
        assert b.iterations == s.iterations

        b_views = batched.assess_local_all(attribute)
        for origin in network.peer_names[:3]:
            s_view = sequential.assess_local(origin, attribute)
            assert set(b_views[origin]) == set(s_view)
            for name, value in s_view.items():
                assert b_views[origin][name] == pytest.approx(value, abs=1e-12)


class TestMixedRingNetwork:
    def test_mixed_signs_and_dense_coexistence(self):
        # 4 rings of 30 (half corrupted): negative and positive long CPTs
        # in one count bucket, posteriors matching the loop backend.
        network = long_cycle_network(30, rings=4, attribute_count=4, seed=7)
        attribute = network.attribute_universe()[0]
        evidence = _ring_evidence(network, attribute, 30)
        informative = evidence.informative_feedbacks
        kinds = {feedback.kind for feedback in informative}
        assert kinds == {FeedbackKind.POSITIVE, FeedbackKind.NEGATIVE}
        graph = build_factor_graph(
            informative, priors=0.5, attribute=attribute
        ).graph
        loops = run_sum_product(graph, backend="loops")
        assessor = MappingQualityAssessor(
            network, delta=0.1, ttl=30, include_parallel_paths=False
        )
        assessment = assessor.assess_attributes([attribute])[attribute]
        for name, posterior in assessment.posteriors.items():
            reference = loops.probability_correct(f"m[{name}]@{attribute}")
            assert posterior == pytest.approx(reference, abs=1e-9)

    def test_dicts_backend_parity_at_long_arity(self):
        # The historical dict-state loop reference of the embedded engine
        # also routes long replicas through the count kernels.
        network = cycle_network(40, attribute_count=4, seed=1)
        attribute = network.attribute_universe()[0]
        informative = _ring_evidence(
            network, attribute, 40
        ).informative_feedbacks
        arrays = EmbeddedMessagePassing(
            informative,
            priors=0.5,
            delta=0.1,
            transport=MessageTransport(0.8, seed=5),
            backend="arrays",
        ).run()
        dicts = EmbeddedMessagePassing(
            informative,
            priors=0.5,
            delta=0.1,
            transport=MessageTransport(0.8, seed=5),
            backend="dicts",
        ).run()
        assert arrays.iterations == dicts.iterations
        for name, value in dicts.posteriors.items():
            assert arrays.posteriors[name] == pytest.approx(value, abs=1e-12)
