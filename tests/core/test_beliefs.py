"""Unit tests for prior belief storage and EM-style updates."""

import pytest

from repro.core.beliefs import MAXIMUM_ENTROPY_PRIOR, PriorBeliefStore
from repro.exceptions import ReproError


class TestDefaults:
    def test_unknown_pair_gets_default_prior(self):
        store = PriorBeliefStore()
        assert store.prior("p1->p2", "Creator") == MAXIMUM_ENTROPY_PRIOR

    def test_custom_default(self):
        store = PriorBeliefStore(default_prior=0.7)
        assert store.prior("p1->p2", "Creator") == 0.7

    def test_invalid_default_rejected(self):
        with pytest.raises(ReproError):
            PriorBeliefStore(default_prior=1.2)


class TestExplicitPriors:
    def test_set_and_get(self):
        store = PriorBeliefStore()
        store.set_prior("p1->p2", "Creator", 0.9)
        assert store.prior("p1->p2", "Creator") == 0.9
        assert store.prior("p1->p2", "Title") == MAXIMUM_ENTROPY_PRIOR

    def test_bulk_set(self):
        store = PriorBeliefStore()
        store.bulk_set({("a->b", "X"): 0.8, ("b->c", "X"): 0.6})
        assert store.prior("a->b", "X") == 0.8
        assert store.prior("b->c", "X") == 0.6
        assert len(store) == 2

    def test_invalid_prior_rejected(self):
        store = PriorBeliefStore()
        with pytest.raises(ReproError):
            store.set_prior("a->b", "X", -0.1)


class TestEMUpdates:
    def test_running_average_of_posteriors(self):
        store = PriorBeliefStore()
        store.record_posterior("a->b", "X", 0.6)
        assert store.prior("a->b", "X") == pytest.approx(0.6)
        store.record_posterior("a->b", "X", 0.4)
        assert store.prior("a->b", "X") == pytest.approx(0.5)
        store.record_posterior("a->b", "X", 0.8)
        assert store.prior("a->b", "X") == pytest.approx(0.6)
        assert store.evidence_count("a->b", "X") == 3

    def test_section45_prior_update_shape(self):
        """After one posterior (0.59 / 0.30) plus one neutral observation the
        priors land near the paper's reported 0.55 / 0.40."""
        store = PriorBeliefStore()
        store.record_posterior("p2->p3", "Creator", 0.59)
        store.record_posterior("p2->p3", "Creator", 0.5)
        store.record_posterior("p2->p4", "Creator", 0.30)
        store.record_posterior("p2->p4", "Creator", 0.5)
        assert store.prior("p2->p3", "Creator") == pytest.approx(0.545, abs=0.01)
        assert store.prior("p2->p4", "Creator") == pytest.approx(0.40, abs=0.01)

    def test_pinned_prior_not_moved_by_evidence(self):
        store = PriorBeliefStore()
        store.set_prior("a->b", "X", 1.0, pinned=True)
        store.record_posterior("a->b", "X", 0.1)
        assert store.prior("a->b", "X") == 1.0
        assert store.evidence_count("a->b", "X") == 1

    def test_record_posteriors_bulk(self):
        store = PriorBeliefStore()
        updated = store.record_posteriors({("a->b", "X"): 0.8, ("b->c", "X"): 0.2})
        assert updated[("a->b", "X")] == pytest.approx(0.8)
        assert updated[("b->c", "X")] == pytest.approx(0.2)

    def test_invalid_posterior_rejected(self):
        store = PriorBeliefStore()
        with pytest.raises(ReproError):
            store.record_posterior("a->b", "X", 1.1)

    def test_snapshot_and_known_keys(self):
        store = PriorBeliefStore()
        store.set_prior("a->b", "X", 0.8)
        snapshot = store.snapshot()
        assert snapshot == {("a->b", "X"): 0.8}
        assert store.known_keys() == (("a->b", "X"),)
