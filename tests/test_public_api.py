"""Tests for the top-level public API surface of the package."""

import pytest

import repro


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_exception_hierarchy(self):
        from repro.exceptions import (
            AlignmentError,
            FactorGraphError,
            MappingError,
            PDMSError,
            ReproError,
            SchemaError,
        )

        for exception_type in (
            FactorGraphError,
            MappingError,
            PDMSError,
            SchemaError,
            AlignmentError,
        ):
            assert issubclass(exception_type, ReproError)

    def test_quickstart_snippet_from_module_docstring(self):
        """The usage example in the package docstring must keep working."""
        network = repro.intro_example_network()
        assessor = repro.MappingQualityAssessor(network, delta=0.1)
        assessment = assessor.assess_attribute("Creator")
        assert assessment.posteriors
        router = assessor.router()
        assert router is not None

    def test_subpackages_importable(self):
        import repro.alignment
        import repro.core
        import repro.evaluation
        import repro.factorgraph
        import repro.generators
        import repro.mapping
        import repro.pdms
        import repro.schema

        for module in (
            repro.alignment,
            repro.core,
            repro.evaluation,
            repro.factorgraph,
            repro.generators,
            repro.mapping,
            repro.pdms,
            repro.schema,
        ):
            assert module.__doc__, f"{module.__name__} is missing a docstring"

    def test_compensation_probability_reexported(self):
        assert repro.compensation_probability(11) == pytest.approx(0.1)
