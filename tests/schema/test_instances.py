"""Unit tests for repro.schema.instances."""

import pytest

from repro.exceptions import QueryError, UnknownAttributeError
from repro.schema.instances import InstanceStore, Record
from repro.schema.schema import Schema


@pytest.fixture
def store():
    schema = Schema("art", attributes=["Creator", "Title", "Subject"])
    store = InstanceStore(schema)
    store.insert({"Creator": "Monet", "Title": "Morning", "Subject": "river Seine"})
    store.insert({"Creator": "Turner", "Title": "Rain", "Subject": "speed"})
    store.insert({"Creator": "Hokusai", "Subject": "the great wave"})
    return store


class TestInsertion:
    def test_insert_validates_attributes(self, store):
        with pytest.raises(UnknownAttributeError):
            store.insert({"Painter": "X"})

    def test_insert_many_returns_count(self):
        schema = Schema("s", ["A"])
        store = InstanceStore(schema)
        assert store.insert_many([{"A": 1}, {"A": 2}]) == 2
        assert len(store) == 2

    def test_insert_record_object(self, store):
        record = Record(schema_name="other", values={"Creator": "Degas"})
        stored = store.insert(record)
        assert stored.schema_name == "art"
        assert stored.get("Creator") == "Degas"

    def test_len_and_iter(self, store):
        assert len(store) == 3
        assert len(list(store)) == 3


class TestQueryPrimitives:
    def test_select_matches_predicate(self, store):
        results = store.select("Subject", lambda v: "river" in v)
        assert len(results) == 1
        assert results[0].get("Creator") == "Monet"

    def test_select_skips_missing_values(self, store):
        results = store.select("Title", lambda v: True)
        assert len(results) == 2  # Hokusai record has no Title

    def test_select_unknown_attribute_raises(self, store):
        with pytest.raises(UnknownAttributeError):
            store.select("Painter", lambda v: True)

    def test_select_requires_callable(self, store):
        with pytest.raises(QueryError):
            store.select("Subject", "not callable")

    def test_project(self, store):
        projected = store.project(["Creator"])
        assert all(set(record.values) <= {"Creator"} for record in projected)
        assert len(projected) == 3

    def test_project_unknown_attribute_raises(self, store):
        with pytest.raises(UnknownAttributeError):
            store.project(["Painter"])

    def test_values_of(self, store):
        assert set(store.values_of("Creator")) == {"Monet", "Turner", "Hokusai"}
        assert len(store.values_of("Title")) == 2

    def test_scan_returns_all(self, store):
        assert len(store.scan()) == 3


class TestRecord:
    def test_get_missing_returns_none(self):
        record = Record("s", {"A": 1})
        assert record.get("B") is None

    def test_project(self):
        record = Record("s", {"A": 1, "B": 2})
        assert record.project(["A"]).values == {"A": 1}

    def test_rename_attributes_drops_unmapped(self):
        record = Record("s", {"A": 1, "B": 2})
        renamed = record.rename_attributes({"A": "X"}, schema_name="t")
        assert renamed.schema_name == "t"
        assert renamed.values == {"X": 1}
