"""Unit tests for repro.schema.registry."""

import pytest

from repro.exceptions import SchemaError
from repro.schema.registry import SchemaRegistry
from repro.schema.schema import Schema


class TestSchemaRegistry:
    def test_register_and_get(self):
        registry = SchemaRegistry()
        schema = Schema("s", ["A"])
        registry.register(schema)
        assert registry.get("s") is schema

    def test_duplicate_registration_rejected(self):
        registry = SchemaRegistry([Schema("s", ["A"])])
        with pytest.raises(SchemaError):
            registry.register(Schema("s", ["B"]))

    def test_unknown_schema_raises(self):
        with pytest.raises(SchemaError):
            SchemaRegistry().get("missing")

    def test_contains_len_iter_names(self):
        registry = SchemaRegistry([Schema("a", ["X"]), Schema("b", ["Y"])])
        assert "a" in registry
        assert "z" not in registry
        assert 17 not in registry
        assert len(registry) == 2
        assert {schema.name for schema in registry} == {"a", "b"}
        assert registry.names == ("a", "b")

    def test_common_attributes(self):
        registry = SchemaRegistry(
            [Schema("a", ["X", "Y", "Z"]), Schema("b", ["Y", "Z", "W"])]
        )
        assert registry.common_attributes("a", "b") == ("Y", "Z")
