"""Unit tests for repro.schema.schema."""

import pytest

from repro.exceptions import SchemaError, UnknownAttributeError
from repro.schema.attribute import Attribute
from repro.schema.schema import DataModel, Schema


@pytest.fixture
def art_schema():
    return Schema("p2", attributes=["Creator", "Title", "Subject"])


class TestConstruction:
    def test_attributes_from_strings(self, art_schema):
        assert art_schema.attribute_names == ("Creator", "Title", "Subject")

    def test_attributes_from_objects(self):
        schema = Schema("s", attributes=[Attribute("A"), Attribute("B")])
        assert schema.attribute_names == ("A", "B")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", attributes=["A", "A"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema("")

    def test_default_data_model_is_xml(self, art_schema):
        assert art_schema.data_model is DataModel.XML

    def test_from_names_builder(self):
        schema = Schema.from_names("s", ["A", "B"], data_model=DataModel.RELATIONAL)
        assert schema.data_model is DataModel.RELATIONAL
        assert len(schema) == 2


class TestLookups:
    def test_attribute_lookup(self, art_schema):
        assert art_schema.attribute("Creator").name == "Creator"

    def test_unknown_attribute_raises(self, art_schema):
        with pytest.raises(UnknownAttributeError):
            art_schema.attribute("Nope")

    def test_contains_and_has_attribute(self, art_schema):
        assert "Creator" in art_schema
        assert art_schema.has_attribute("Title")
        assert "Nope" not in art_schema
        assert 42 not in art_schema

    def test_len_and_iter(self, art_schema):
        assert len(art_schema) == 3
        assert [a.name for a in art_schema] == ["Creator", "Title", "Subject"]


class TestEqualityAndCopies:
    def test_equality_by_value(self):
        assert Schema("s", ["A"]) == Schema("s", ["A"])
        assert Schema("s", ["A"]) != Schema("s", ["B"])
        assert Schema("s", ["A"]) != Schema("t", ["A"])

    def test_hashable(self):
        assert len({Schema("s", ["A"]), Schema("s", ["A"])}) == 1

    def test_rename_keeps_attributes(self, art_schema):
        renamed = art_schema.rename("p9")
        assert renamed.name == "p9"
        assert renamed.attribute_names == art_schema.attribute_names

    def test_restrict(self, art_schema):
        restricted = art_schema.restrict(["Title", "Creator"])
        assert restricted.attribute_names == ("Title", "Creator")

    def test_restrict_unknown_attribute_raises(self, art_schema):
        with pytest.raises(UnknownAttributeError):
            art_schema.restrict(["Nope"])

    def test_add_attribute_after_construction(self, art_schema):
        art_schema.add_attribute("CreatedOn")
        assert art_schema.has_attribute("CreatedOn")
