"""Unit tests for repro.schema.attribute."""

import pytest

from repro.exceptions import SchemaError
from repro.schema.attribute import Attribute, AttributeType, tokenize_identifier


class TestAttribute:
    def test_default_path_derived_from_name(self):
        assert Attribute("Creator").path == "/Creator"

    def test_explicit_path_kept(self):
        attribute = Attribute("Creator", path="/Photoshop_Image/Creator")
        assert attribute.path == "/Photoshop_Image/Creator"

    def test_path_must_start_with_slash(self):
        with pytest.raises(SchemaError):
            Attribute("Creator", path="Creator")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("   ")

    def test_default_data_type_is_string(self):
        assert Attribute("Creator").data_type is AttributeType.STRING

    def test_attributes_are_frozen_value_objects(self):
        assert Attribute("Creator") == Attribute("Creator")
        with pytest.raises(AttributeError):
            Attribute("Creator").name = "Other"

    def test_tokens_property(self):
        assert Attribute("CreatedOn").tokens == ("created", "on")


class TestTokenizeIdentifier:
    @pytest.mark.parametrize(
        "identifier, expected",
        [
            ("createdOn", ("created", "on")),
            ("CreatedOn", ("created", "on")),
            ("display_name", ("display", "name")),
            ("display-name", ("display", "name")),
            ("Author.DisplayName", ("author", "display", "name")),
            ("ISBN", ("isbn",)),
            ("", ()),
            ("title", ("title",)),
            ("hasTitle2", ("has", "title2")),
        ],
    )
    def test_tokenization(self, identifier, expected):
        assert tokenize_identifier(identifier) == expected

    def test_tokens_are_lowercase(self):
        assert all(t == t.lower() for t in tokenize_identifier("PublisherAddress"))
