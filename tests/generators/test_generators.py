"""Unit tests for schema/topology/scenario generators."""

import pytest

from repro.exceptions import GenerationError
from repro.generators.schemas import concept_pool, generate_schema, generate_schema_family
from repro.generators.scenarios import generate_scenario, inject_errors
from repro.generators.topologies import (
    chain_network,
    cycle_network,
    identity_mapping,
    parallel_paths_network,
    random_network,
    scale_free_network,
)
from repro.schema.schema import Schema


class TestSchemaGenerators:
    def test_concept_pool_sizes(self):
        assert len(concept_pool(5)) == 5
        assert len(concept_pool(30)) == 30
        with pytest.raises(GenerationError):
            concept_pool(0)

    def test_generate_schema_identity_mapping(self):
        schema, mapping = generate_schema("s", ["Creator", "Title"])
        assert schema.attribute_names == ("Creator", "Title")
        assert mapping == {"Creator": "Creator", "Title": "Title"}

    def test_generate_schema_with_renaming(self):
        import random

        schema, mapping = generate_schema(
            "s", ["Creator", "Title"], rename=True, rng=random.Random(1)
        )
        assert set(mapping) == {"Creator", "Title"}
        assert len(schema) == 2

    def test_schema_family_shares_concepts(self):
        schemas, maps = generate_schema_family(4, attribute_count=8)
        assert len(schemas) == 4
        assert all(len(schema) == 8 for schema in schemas)
        assert set(maps) == {schema.name for schema in schemas}

    def test_schema_family_requires_positive_count(self):
        with pytest.raises(GenerationError):
            generate_schema_family(0)


class TestTopologyGenerators:
    def test_identity_mapping_requires_shared_attributes(self):
        with pytest.raises(GenerationError):
            identity_mapping(Schema("a", ["X"]), Schema("b", ["Y"]))

    def test_cycle_network_structure(self):
        network = cycle_network(5)
        assert len(network) == 5
        assert len(network.mappings) == 5
        assert network.out_degree("p1") == 1

    def test_cycle_network_minimum_size(self):
        with pytest.raises(GenerationError):
            cycle_network(1)

    def test_chain_network_has_no_cycles(self):
        from repro.pdms.probing import find_all_cycles

        network = chain_network(5)
        assert find_all_cycles(network, ttl=10) == ()

    def test_parallel_paths_network(self):
        from repro.pdms.probing import find_parallel_paths_from

        network = parallel_paths_network(branch_lengths=(1, 2))
        pairs = find_parallel_paths_from(network, "p1", ttl=4)
        assert len(pairs) >= 1

    def test_parallel_paths_validation(self):
        with pytest.raises(GenerationError):
            parallel_paths_network(branch_lengths=(2,))
        with pytest.raises(GenerationError):
            parallel_paths_network(branch_lengths=(0, 2))

    def test_random_network_is_weakly_connected(self):
        import networkx as nx

        network = random_network(10, edge_probability=0.15, seed=3)
        assert nx.is_weakly_connected(network.to_networkx())

    def test_scale_free_network_size(self):
        network = scale_free_network(12, seed=1)
        assert len(network) == 12
        assert len(network.mappings) > 12  # both directions of each BA edge

    def test_scale_free_minimum_size(self):
        with pytest.raises(GenerationError):
            scale_free_network(2)

    def test_generated_networks_are_deterministic(self):
        first = scale_free_network(10, seed=7)
        second = scale_free_network(10, seed=7)
        assert first.mapping_names == second.mapping_names


class TestScenarioGenerator:
    def test_error_injection_respects_rate_extremes(self):
        network = cycle_network(4)
        truth = inject_errors(network, 0.0, seed=1)
        assert all(truth.values())
        network2 = cycle_network(4)
        truth2 = inject_errors(network2, 1.0, seed=1)
        assert not any(truth2.values())

    def test_injected_errors_visible_in_mappings(self):
        network = cycle_network(4)
        truth = inject_errors(network, 0.5, seed=3)
        erroneous = [key for key, ok in truth.items() if not ok]
        assert erroneous
        mapping_name, attribute = erroneous[0]
        mapping = network.mapping(mapping_name)
        assert mapping.is_correct_for(attribute) is False

    def test_generate_scenario_defaults(self):
        scenario = generate_scenario(peer_count=8, error_rate=0.2, seed=2)
        assert scenario.topology == "scale-free"
        assert len(scenario.network) == 8
        assert scenario.ground_truth
        assert 0 < len(scenario.erroneous_pairs) < len(scenario.ground_truth)

    def test_generate_scenario_unknown_topology(self):
        with pytest.raises(GenerationError):
            generate_scenario(topology="torus")

    def test_scenario_helpers(self):
        scenario = generate_scenario(topology="cycle", peer_count=5, error_rate=0.3, seed=5)
        attribute = scenario.network.attribute_universe()[0]
        erroneous = scenario.erroneous_mappings(attribute)
        for name in erroneous:
            assert scenario.is_correct(name, attribute) is False
        for key in scenario.correct_pairs:
            assert scenario.ground_truth[key] is True

    def test_invalid_error_rate_rejected(self):
        network = cycle_network(4)
        with pytest.raises(GenerationError):
            inject_errors(network, 1.5)
