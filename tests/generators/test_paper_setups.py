"""Unit tests for the paper's named experimental setups."""

import pytest

from repro.core.feedback import FeedbackKind, StructureKind
from repro.generators.paper import (
    INTRO_ATTRIBUTE,
    INTRO_SCHEMA_CONCEPTS,
    extended_cycle_feedbacks,
    figure4_feedbacks,
    intro_example_feedbacks,
    intro_example_network,
    single_cycle_feedback,
)


class TestIntroExampleNetwork:
    def test_four_peers_six_mappings(self):
        network = intro_example_network(with_records=False)
        assert len(network) == 4
        assert len(network.mappings) == 6

    def test_schemas_have_eleven_attributes(self):
        network = intro_example_network(with_records=False)
        assert len(INTRO_SCHEMA_CONCEPTS) == 11
        for peer in network.peers:
            assert len(peer.schema) == 11

    def test_only_p2_p4_is_faulty_for_creator(self):
        network = intro_example_network(with_records=False)
        for mapping in network.mappings:
            if mapping.name == "p2->p4":
                assert mapping.is_correct_for(INTRO_ATTRIBUTE) is False
                assert mapping.apply(INTRO_ATTRIBUTE) == "CreatedOn"
            else:
                assert mapping.is_correct_for(INTRO_ATTRIBUTE) is True

    def test_records_loaded_when_requested(self):
        with_data = intro_example_network(with_records=True)
        without_data = intro_example_network(with_records=False)
        assert with_data.peer("p2").record_count > 0
        assert without_data.peer("p2").record_count == 0


class TestIntroExampleFeedbacks:
    def test_three_feedbacks_of_section_45(self):
        feedbacks = intro_example_feedbacks()
        assert [f.identifier for f in feedbacks] == ["f1", "f2", "f3=>"]
        assert [f.kind for f in feedbacks] == [
            FeedbackKind.POSITIVE,
            FeedbackKind.NEGATIVE,
            FeedbackKind.NEGATIVE,
        ]
        assert feedbacks[2].structure is StructureKind.PARALLEL_PATHS

    def test_feedbacks_consistent_with_materialised_network(self):
        """The hand-specified feedback signs match what the actual network
        round trips produce."""
        from repro.mapping.composition import parallel_paths_outcome, round_trip_outcome

        network = intro_example_network(with_records=False)
        m = network.mapping
        assert (
            round_trip_outcome(
                [m("p1->p2"), m("p2->p3"), m("p3->p4"), m("p4->p1")], "Creator"
            )
            == "positive"
        )
        assert (
            round_trip_outcome([m("p1->p2"), m("p2->p4"), m("p4->p1")], "Creator")
            == "negative"
        )
        assert (
            parallel_paths_outcome(
                [m("p2->p4")], [m("p2->p3"), m("p3->p4")], "Creator"
            )
            == "negative"
        )


class TestFigure4Feedbacks:
    def test_default_signs(self):
        feedbacks = figure4_feedbacks()
        assert [f.kind for f in feedbacks] == [
            FeedbackKind.POSITIVE,
            FeedbackKind.NEGATIVE,
            FeedbackKind.NEGATIVE,
        ]
        assert len(feedbacks[0].mapping_names) == 4
        assert len(feedbacks[1].mapping_names) == 3
        assert len(feedbacks[2].mapping_names) == 3

    def test_custom_signs(self):
        feedbacks = figure4_feedbacks(signs=("+", "+", "+"))
        assert all(f.kind is FeedbackKind.POSITIVE for f in feedbacks)

    def test_wrong_sign_count_rejected(self):
        with pytest.raises(ValueError):
            figure4_feedbacks(signs=("+",))


class TestExtendedCycleFeedbacks:
    def test_zero_extra_peers_matches_figure4(self):
        base = figure4_feedbacks()
        extended = extended_cycle_feedbacks(0)
        assert [f.mapping_names for f in base] == [f.mapping_names for f in extended]

    def test_extra_peers_lengthen_the_long_cycles(self):
        extended = extended_cycle_feedbacks(2)
        assert len(extended[0].mapping_names) == 6
        assert len(extended[1].mapping_names) == 5
        assert len(extended[2].mapping_names) == 3
        assert "p1->x1" in extended[0].mapping_names
        assert "x2->p2" in extended[0].mapping_names

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            extended_cycle_feedbacks(-1)


class TestSingleCycleFeedback:
    def test_mapping_names_form_a_cycle(self):
        feedback = single_cycle_feedback(4)
        assert feedback.mapping_names == ("p1->p2", "p2->p3", "p3->p4", "p4->p1")
        assert feedback.kind is FeedbackKind.POSITIVE

    def test_negative_kind(self):
        assert single_cycle_feedback(3, kind="-").kind is FeedbackKind.NEGATIVE

    def test_too_short_cycle_rejected(self):
        with pytest.raises(ValueError):
            single_cycle_feedback(1)
