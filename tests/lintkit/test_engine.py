"""Engine mechanics: suppression scoping, module naming, parse caching."""

import pathlib
import textwrap

from repro.lintkit import parse_module, run_lint, rules_by_id

SRC = pathlib.Path(__file__).parents[2] / "src"


def lint_source(tmp_path, source, name="repro/evaluation/sample.py"):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = run_lint([tmp_path])
    return findings


class TestSuppressions:
    def test_suppression_is_scoped_to_its_own_line(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            def check(value):
                a = value == 0.5  # lint: disable=numeric-float-equality
                b = value == 0.5
                return a, b
            """,
        )
        by_line = {f.line: f for f in findings}
        assert by_line[2].suppressed
        assert not by_line[3].suppressed

    def test_suppression_silences_only_the_named_rule(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            def check(value):
                return value == 0.5  # lint: disable=knob-env-read
            """,
        )
        float_eq = [f for f in findings if f.rule == "numeric-float-equality"]
        assert len(float_eq) == 1 and not float_eq[0].suppressed

    def test_suppression_must_name_a_rule(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            def check(value):
                return value == 0.5  # lint: disable
            """,
        )
        rules = {f.rule for f in findings}
        assert "lint-suppression" in rules
        # ... and the malformed directive does not silence the finding.
        float_eq = [f for f in findings if f.rule == "numeric-float-equality"]
        assert float_eq and not float_eq[0].suppressed

    def test_unknown_rule_id_is_reported(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            value = 1  # lint: disable=no-such-rule
            """,
        )
        [finding] = [f for f in findings if f.rule == "lint-suppression"]
        assert "no-such-rule" in finding.message
        assert not finding.suppressed

    def test_multiple_rules_in_one_directive(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            def check(value, bucket=[]):  # lint: disable=numeric-mutable-default, numeric-float-equality
                return value == 0.5, bucket
            """,
        )
        by_rule = {f.rule: f for f in findings}
        assert by_rule["numeric-mutable-default"].suppressed
        # The comparison sits on line 2, outside the directive's scope.
        assert not by_rule["numeric-float-equality"].suppressed

    def test_prose_mentioning_the_directive_is_not_parsed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """\
            # docs: silence a rule with "# lint: disable=<rule-id>" inline
            value = 1
            """,
        )
        assert findings == []


class TestModuleNaming:
    def test_scan_roots_name_modules_identically(self):
        from_src = parse_module(SRC / "repro" / "constants.py", SRC)
        from_pkg = parse_module(
            SRC / "repro" / "constants.py", SRC / "repro"
        )
        assert from_src.module == "repro.constants"
        assert from_pkg.module == "repro.constants"

    def test_package_init_is_named_after_the_package(self):
        parsed = parse_module(SRC / "repro" / "__init__.py", SRC)
        assert parsed.module == "repro"
        assert parsed.is_package

    def test_parse_cache_reuses_unchanged_files(self):
        first = parse_module(SRC / "repro" / "constants.py", SRC)
        second = parse_module(SRC / "repro" / "constants.py", SRC)
        assert first is second


class TestRuleSelection:
    def test_single_rule_run_sees_only_that_rule(self, tmp_path):
        target = tmp_path / "repro" / "core" / "mixed.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "from repro.evaluation import metrics\n"
            "\n"
            "\n"
            "def check(value):\n"
            "    return value == 0.5\n",
            encoding="utf-8",
        )
        rule = rules_by_id()["layering-import-dag"]
        findings, _ = run_lint([tmp_path], rules=[rule])
        assert {f.rule for f in findings} == {"layering-import-dag"}
