"""Doc-sync: ARCHITECTURE.md names everything the contracts declare.

The contracts module is the machine-readable source of truth and
ARCHITECTURE.md its normative prose twin; this test keeps them from
drifting apart by asserting the prose names every layer, rule id, wire
type, kernel/walker module and environment knob in the tables.
"""

import pathlib

import pytest

from repro.lintkit import SUPPRESSION_RULE_ID, all_rules
from repro.lintkit import contracts

DOC = pathlib.Path(__file__).parents[2] / "ARCHITECTURE.md"


@pytest.fixture(scope="module")
def doc_text():
    assert DOC.is_file(), "ARCHITECTURE.md must live at the repository root"
    return DOC.read_text(encoding="utf-8")


def test_every_layer_is_documented(doc_text):
    for layer in contracts.IMPORT_DAG:
        assert f"`{layer}`" in doc_text, f"layer {layer!r} missing"


def test_every_rule_id_is_documented(doc_text):
    rule_ids = [rule.rule_id for rule in all_rules()] + [SUPPRESSION_RULE_ID]
    for rule_id in rule_ids:
        assert f"`{rule_id}`" in doc_text, f"rule {rule_id!r} missing"


def test_every_wire_type_is_documented(doc_text):
    for wire_type in contracts.PICKLABLE_BOUNDARY:
        assert f"`{wire_type}`" in doc_text, f"type {wire_type!r} missing"


def test_every_env_knob_is_documented(doc_text):
    for knob in sorted(contracts.KNOWN_ENV_KNOBS):
        assert f"`{knob}`" in doc_text, f"knob {knob!r} missing"


def test_kernel_and_walker_surfaces_are_documented(doc_text):
    assert f"`{contracts.KERNEL_SURFACE_MODULE}`" in doc_text
    assert f"`{contracts.KERNEL_IMPLEMENTATION_MODULE}`" in doc_text
    assert f"`{contracts.WALKER_MODULE}`" in doc_text
    for name in sorted(contracts.KERNEL_NAMES | contracts.WALKER_NAMES):
        assert f"`{name}`" in doc_text, f"name {name!r} missing"


def test_knob_registries_are_the_same_set():
    from repro.constants import KNOWN_ENV_KNOBS

    assert contracts.KNOWN_ENV_KNOBS == KNOWN_ENV_KNOBS


def test_version_is_documented(doc_text):
    assert "RULESET_VERSION" in doc_text
