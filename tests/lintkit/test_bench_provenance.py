"""BENCH_*.json provenance: every record carries the lint verdict.

The benchmark emitters stamp ``lint_clean`` / ``lintkit_version`` next to
the executor provenance, so a perf number can never silently come from a
tree violating the architectural invariants.  ``lint_status`` is cached
per process — the emitters add one lint run to a whole benchmark session.
"""

import importlib.util
import json
import pathlib

from repro.lintkit import RULESET_VERSION, lint_status

BENCH_CONFTEST = (
    pathlib.Path(__file__).parents[2] / "benchmarks" / "conftest.py"
)


def load_bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", BENCH_CONFTEST
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_lint_status_is_clean_and_cached():
    status = lint_status()
    assert status == {
        "lint_clean": True,
        "lintkit_version": RULESET_VERSION,
    }
    assert lint_status() is status


def test_emit_json_report_stamps_the_lint_verdict(tmp_path, monkeypatch, capsys):
    conftest = load_bench_conftest()
    monkeypatch.setattr(conftest, "REPORT_DIR", tmp_path)
    conftest.emit_json_report("provenance_smoke", {"metric": 1.0})
    record = json.loads(
        (tmp_path / "BENCH_provenance_smoke.json").read_text(encoding="utf-8")
    )
    assert record["lint_clean"] is True
    assert record["lintkit_version"] == RULESET_VERSION
    assert record["metric"] == 1.0
    # The benchmark's own payload always wins over the stamp.
    conftest.emit_json_report(
        "provenance_override", {"lint_clean": None}
    )
    override = json.loads(
        (tmp_path / "BENCH_provenance_override.json").read_text(
            encoding="utf-8"
        )
    )
    assert override["lint_clean"] is None
