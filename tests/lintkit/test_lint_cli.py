"""The ``repro-lint`` entry point: exit codes, JSON schema, baseline flow."""

import json
import pathlib

import pytest

from repro.lintkit import main
from repro.lintkit.baseline import HEADER, TODO_JUSTIFICATION
from repro.lintkit.contracts import RULESET_VERSION
from repro.lintkit.rules import all_rules

FIXTURE_TREE = pathlib.Path(__file__).parent / "fixtures" / "tree"

SRC_REPRO = pathlib.Path(__file__).parents[2] / "src" / "repro"

#: The pinned ``--json`` schema.  Extending it is fine (bump the ruleset
#: version); renaming or dropping keys breaks CI consumers.
TOP_KEYS = {
    "tool",
    "ruleset_version",
    "clean",
    "paths",
    "counts",
    "rules",
    "findings",
    "stale_baseline",
}
COUNT_KEYS = {"total", "active", "baselined", "suppressed", "stale_baseline"}
RULE_KEYS = {"id", "family", "description"}
FINDING_KEYS = {
    "rule",
    "module",
    "file",
    "line",
    "message",
    "baselined",
    "suppressed",
    "fingerprint",
}
STALE_KEYS = {"rule", "module", "fingerprint", "justification"}


def write_violation(tree, rel="repro/mapping/bad.py",
                    line="from repro.core import analysis\n"):
    target = tree / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(line, encoding="utf-8")
    return target


class TestJsonReport:
    def test_schema_key_sets_are_stable(self, capsys, tmp_path):
        ghost = tmp_path / "baseline.txt"
        ghost.write_text(
            f"{HEADER}\n"
            f"knob-env-read repro.long.gone aaaaaaaaaaaa  # ghost entry\n",
            encoding="utf-8",
        )
        code = main(
            ["--json", "--baseline", str(ghost), str(FIXTURE_TREE)]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert set(report) == TOP_KEYS
        assert set(report["counts"]) == COUNT_KEYS
        assert report["findings"] and report["rules"]
        for rule in report["rules"]:
            assert set(rule) == RULE_KEYS
        for finding in report["findings"]:
            assert set(finding) == FINDING_KEYS
        assert report["stale_baseline"], "ghost entry must be reported stale"
        for stale in report["stale_baseline"]:
            assert set(stale) == STALE_KEYS
        assert report["tool"] == "repro-lint"
        assert report["ruleset_version"] == RULESET_VERSION
        assert report["clean"] is False
        assert report["counts"]["stale_baseline"] == 1
        assert report["counts"]["suppressed"] == 1

    def test_json_lists_the_full_default_rule_set(self, capsys, tmp_path):
        clean = tmp_path / "repro" / "evaluation"
        clean.mkdir(parents=True)
        (clean / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
        code = main(["--json", "--no-baseline", str(tmp_path)])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["clean"] is True
        listed = {rule["id"] for rule in report["rules"]}
        assert listed == {rule.rule_id for rule in all_rules()}


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "ok.py").write_text("VALUE = 1\n")
        assert main(["--no-baseline", str(tmp_path)]) == 0

    def test_synthetic_layering_violation_fails_ci_mode(self, capsys, tmp_path):
        write_violation(tmp_path)
        code = main(["--json", str(tmp_path)])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["clean"] is False
        rules = {f["rule"] for f in report["findings"]}
        assert rules == {"layering-import-dag"}
        [finding] = report["findings"]
        assert finding["module"] == "repro.mapping.bad"
        assert finding["line"] == 1

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--rules", "no-such-rule", str(FIXTURE_TREE)])
        assert excinfo.value.code == 2

    def test_missing_path_is_a_usage_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "nowhere")])
        assert excinfo.value.code == 2

    def test_list_rules_prints_every_id(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out


class TestBaselineFlow:
    def test_update_then_rerun_is_clean(self, capsys, tmp_path):
        write_violation(tmp_path)
        baseline = tmp_path / "lintkit-baseline.txt"
        assert main(
            ["--baseline", str(baseline), "--update-baseline", str(tmp_path)]
        ) == 0
        assert TODO_JUSTIFICATION in baseline.read_text(encoding="utf-8")
        # The grandfathered finding no longer fails the run ...
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
        # ... but a fresh violation still does.
        write_violation(tmp_path, rel="repro/schema/worse.py")
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 1

    def test_update_preserves_edited_justifications(self, capsys, tmp_path):
        write_violation(tmp_path)
        baseline = tmp_path / "lintkit-baseline.txt"
        main(["--baseline", str(baseline), "--update-baseline", str(tmp_path)])
        edited = baseline.read_text(encoding="utf-8").replace(
            TODO_JUSTIFICATION, "sanctioned legacy edge, tracked in ISSUE 12"
        )
        baseline.write_text(edited, encoding="utf-8")
        main(["--baseline", str(baseline), "--update-baseline", str(tmp_path)])
        assert "sanctioned legacy edge" in baseline.read_text(encoding="utf-8")


class TestRepositoryIsClean:
    def test_repro_lint_over_the_installed_tree_exits_zero(self, capsys):
        assert main([str(SRC_REPRO)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
