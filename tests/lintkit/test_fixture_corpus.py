"""The fixture corpus: one violating + one clean snippet per rule family.

Each violating fixture pins the exact ``(line, rule-id)`` set repro-lint
must report for it — file and line precision is part of the acceptance
contract — and each clean fixture mirrors the sanctioned pattern its
violating twin breaks, asserting the rule stays quiet on it.
"""

import pathlib
from collections import defaultdict

import pytest

from repro.lintkit import run_lint

FIXTURE_TREE = pathlib.Path(__file__).parent / "fixtures" / "tree"

#: relative path -> {(line, rule-id, suppressed)} the corpus must yield.
VIOLATING = {
    "repro/core/imports_upward.py": {(3, "layering-import-dag", False)},
    "repro/core/uses_kernels.py": {(3, "layering-plan-kernels", False)},
    "repro/core/uses_walkers.py": {(3, "layering-discovery-walkers", False)},
    "repro/core/suppressed.py": {
        (5, "numeric-float-equality", True),
        (6, "numeric-float-equality", False),
    },
    "repro/core/bad_suppression.py": {
        (5, "numeric-float-equality", False),
        (5, "lint-suppression", False),
        (6, "numeric-float-equality", False),
        (6, "lint-suppression", False),
    },
    "repro/factorgraph/global_rng.py": {(7, "determinism-global-rng", False)},
    "repro/factorgraph/unseeded_rng.py": {
        (7, "determinism-unseeded-rng", False)
    },
    "repro/factorgraph/wallclock.py": {(7, "determinism-wallclock", False)},
    "repro/pdms/closure_submit.py": {
        (5, "process-closure", False),
        (10, "process-closure", False),
    },
    "repro/pdms/wire_unregistered.py": {
        (10, "process-boundary", False),
        (11, "process-boundary", False),
    },
    "repro/evaluation/env_read.py": {(7, "knob-env-read", False)},
    "repro/evaluation/float_equality.py": {
        (5, "numeric-float-equality", False)
    },
    "repro/evaluation/mutable_default.py": {
        (4, "numeric-mutable-default", False)
    },
}

CLEAN = {
    "repro/core/clean_module.py",
    "repro/factorgraph/clean_timing.py",
    "repro/pdms/clean_fanout.py",
    "repro/evaluation/clean_env.py",
    "repro/evaluation/clean_numeric.py",
}


@pytest.fixture(scope="module")
def corpus():
    findings, stale = run_lint([FIXTURE_TREE])
    assert stale == []
    grouped = defaultdict(set)
    for finding in findings:
        rel = pathlib.Path(finding.path).relative_to(FIXTURE_TREE).as_posix()
        grouped[rel].add((finding.line, finding.rule, finding.suppressed))
    return dict(grouped), findings


def test_every_fixture_is_accounted_for():
    on_disk = {
        path.relative_to(FIXTURE_TREE).as_posix()
        for path in FIXTURE_TREE.rglob("*.py")
    }
    assert on_disk == set(VIOLATING) | CLEAN


@pytest.mark.parametrize("rel", sorted(VIOLATING))
def test_violating_fixture_reports_exact_lines(corpus, rel):
    grouped, _ = corpus
    assert grouped.get(rel, set()) == VIOLATING[rel]


@pytest.mark.parametrize("rel", sorted(CLEAN))
def test_clean_fixture_reports_nothing(corpus, rel):
    grouped, _ = corpus
    assert grouped.get(rel, set()) == set()


def test_every_rule_family_has_a_violating_fixture(corpus):
    grouped, _ = corpus
    reported = {rule for hits in grouped.values() for _, rule, _ in hits}
    expected = {
        "layering-import-dag",
        "layering-plan-kernels",
        "layering-discovery-walkers",
        "determinism-global-rng",
        "determinism-unseeded-rng",
        "determinism-wallclock",
        "process-closure",
        "process-boundary",
        "knob-env-read",
        "numeric-float-equality",
        "numeric-mutable-default",
        "lint-suppression",
    }
    assert reported == expected


def test_module_names_are_rooted_at_repro(corpus):
    _, findings = corpus
    assert findings
    for finding in findings:
        assert finding.module.startswith("repro."), finding
