"""Violating fixture: an engine enumerating structures with raw walkers."""

from repro.pdms.probing import find_all_cycles


def probe(network, ttl):
    return find_all_cycles(network, ttl)
