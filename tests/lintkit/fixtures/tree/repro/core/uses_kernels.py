"""Violating fixture: an engine importing kernels from the implementation."""

from repro.factorgraph.compiled import segment_products


def lower(batch):
    return segment_products(batch.values, batch.segments)
