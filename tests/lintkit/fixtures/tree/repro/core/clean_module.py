"""Clean fixture: an engine reaching its dependencies the sanctioned way."""

from repro.factorgraph.plan import segment_products
from repro.pdms.discovery import ProbePlan


def lower(batch):
    return segment_products(batch.values, batch.segments), ProbePlan
