"""Fixture: one justified suppression, one unsuppressed finding next line."""


def classify(weight):
    exact_zero = weight == 0.0  # lint: disable=numeric-float-equality
    near_half = weight == 0.5
    return exact_zero, near_half
