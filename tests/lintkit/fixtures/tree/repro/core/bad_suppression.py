"""Fixture: malformed and unknown-rule inline suppressions."""


def classify(weight):
    a = weight == 0.5  # lint: disable
    b = weight == 0.5  # lint: disable=no-such-rule
    return a, b
