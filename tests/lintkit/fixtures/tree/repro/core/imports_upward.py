"""Violating fixture: a core module importing up the stack."""

from repro.evaluation import metrics


def summarize(network):
    return metrics.summary(network)
