"""Violating fixture: wall-clock read inside a deterministic code path."""

import time


def stamp():
    return time.time()
