"""Violating fixture: an rng factory without an explicit seed."""

import random


def make_stream():
    return random.Random()
