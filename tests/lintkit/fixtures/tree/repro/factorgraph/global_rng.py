"""Violating fixture: hidden-global-state randomness."""

import random


def jitter(values):
    return [value + random.random() for value in values]
