"""Clean fixture: seeded rng streams and monotonic duration measurement."""

import random
import time


def timed_shuffle(values, seed):
    rng = random.Random(seed)
    start = time.monotonic()
    shuffled = rng.sample(values, len(values))
    return shuffled, time.monotonic() - start
