"""Violating fixture: closures shipped to executor submission sites."""


def fan_out(pool, units):
    handles = [pool.submit(lambda unit=unit: unit) for unit in units]

    def merge(handle):
        return handle.result()

    return [pool.submit(merge) for handle in handles]
