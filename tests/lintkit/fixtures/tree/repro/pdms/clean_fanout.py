"""Clean fixture: module-level worker entry, registered wire payload, and
the sanctioned deferred (function-scope) discovery import."""


def probe_entry(plan):
    return plan


def fan_out(pool, snapshot):
    from repro.pdms.discovery import ProbePlan

    return pool.apply_async(probe_entry, args=(ProbePlan(snapshot),))
