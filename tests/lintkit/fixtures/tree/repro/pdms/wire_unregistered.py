"""Violating fixture: bound methods and unregistered payloads on the wire."""


def probe_entry(envelope):
    return envelope


class Coordinator:
    def launch(self, pool, unit):
        bound = pool.apply_async(self._probe, args=(unit,))
        wired = pool.apply_async(probe_entry, args=(WireEnvelope(unit),))
        return bound, wired

    def _probe(self, unit):
        return unit
