"""Clean fixture: tolerance comparisons and per-call constructed defaults."""

import math


def is_uninformative(posterior):
    return math.isclose(posterior, 0.5)


def collect(name, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(name)
    return bucket
