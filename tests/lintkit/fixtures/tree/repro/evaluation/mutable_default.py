"""Violating fixture: a mutable default argument."""


def collect(name, bucket=[]):
    bucket.append(name)
    return bucket
