"""Violating fixture: equality against a float literal."""


def is_uninformative(posterior):
    return posterior == 0.5
