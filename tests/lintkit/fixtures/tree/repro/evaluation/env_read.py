"""Violating fixture: a direct environment read outside the resolvers."""

import os


def executor_choice():
    return os.environ.get("REPRO_EXECUTOR", "")
