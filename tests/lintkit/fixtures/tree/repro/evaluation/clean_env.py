"""Clean fixture: knobs flow through the validated resolver."""

from repro.constants import EXECUTOR_ENV, read_env


def executor_choice():
    return read_env(EXECUTOR_ENV)
