"""Baseline mechanics: fingerprints, round-trips, staleness, updates."""

import pytest

from repro.lintkit import (
    BaselineEntry,
    Finding,
    find_default_baseline,
    format_baseline,
    load_baseline,
    save_baseline,
)
from repro.lintkit.baseline import (
    HEADER,
    TODO_JUSTIFICATION,
    apply_baseline,
    update_entries,
)


def finding(rule="numeric-float-equality", module="repro.some.module",
            line=7, message="equality against 0.5", **flags):
    result = Finding(
        rule=rule, module=module, path=f"{module.replace('.', '/')}.py",
        line=line, message=message,
    )
    return result.with_flags(**flags) if flags else result


def entry_for(f, justification="deliberate sentinel"):
    return BaselineEntry(
        rule=f.rule,
        module=f.module,
        fingerprint=f.fingerprint(),
        justification=justification,
    )


class TestFingerprint:
    def test_fingerprint_ignores_the_line_number(self):
        assert finding(line=7).fingerprint() == finding(line=99).fingerprint()

    def test_fingerprint_depends_on_rule_module_and_message(self):
        base = finding().fingerprint()
        assert finding(rule="knob-env-read").fingerprint() != base
        assert finding(module="repro.other").fingerprint() != base
        assert finding(message="other message").fingerprint() != base


class TestRoundTrip:
    def test_save_and_load_round_trip(self, tmp_path):
        entries = [entry_for(finding()), entry_for(finding(rule="knob-env-read"))]
        path = tmp_path / "lintkit-baseline.txt"
        save_baseline(path, entries)
        text = path.read_text(encoding="utf-8")
        assert text.startswith(HEADER)
        assert load_baseline(path) == sorted(
            entries, key=lambda e: (e.rule, e.module, e.fingerprint)
        )

    def test_entries_render_with_their_justification(self):
        text = format_baseline([entry_for(finding(), "see PR 9")])
        assert "# see PR 9" in text

    def test_load_rejects_missing_justification(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text(
            f"{HEADER}\nnumeric-float-equality repro.m abc123def456\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="justification"):
            load_baseline(path)

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text(f"{HEADER}\njust-two fields  # why\n", encoding="utf-8")
        with pytest.raises(ValueError, match="baseline entries are"):
            load_baseline(path)


class TestApply:
    def test_matching_findings_are_marked_baselined(self):
        current = finding()
        applied, stale = apply_baseline([current], [entry_for(current)])
        assert applied[0].baselined
        assert stale == []

    def test_unmatched_entries_are_stale(self):
        ghost = entry_for(finding(message="long gone"))
        applied, stale = apply_baseline([finding()], [ghost])
        assert not applied[0].baselined
        assert stale == [ghost]

    def test_suppressed_findings_do_not_consume_entries(self):
        current = finding(suppressed=True)
        applied, stale = apply_baseline([current], [entry_for(current)])
        assert applied[0].suppressed and not applied[0].baselined
        assert len(stale) == 1


class TestUpdate:
    def test_new_findings_get_todo_justifications(self):
        [entry] = update_entries([finding()], [])
        assert entry.justification == TODO_JUSTIFICATION
        assert entry.fingerprint == finding().fingerprint()

    def test_surviving_entries_keep_their_justification(self):
        previous = entry_for(finding(), "reviewed in PR 9")
        [entry] = update_entries([finding()], [previous])
        assert entry.justification == "reviewed in PR 9"

    def test_suppressed_findings_are_not_baselined(self):
        assert update_entries([finding(suppressed=True)], []) == []


class TestDefaultBaseline:
    def test_found_by_walking_upward(self, tmp_path):
        (tmp_path / "lintkit-baseline.txt").write_text(HEADER + "\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        found = find_default_baseline(nested)
        assert found == tmp_path / "lintkit-baseline.txt"

    def test_absent_baseline_returns_none(self, tmp_path):
        assert find_default_baseline(tmp_path) is None
