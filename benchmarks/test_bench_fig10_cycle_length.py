"""E4 — Figure 10: impact of the cycle length on the posterior probability.

Setting: a single positive cycle of 2–20 mappings, priors at 0.5, two
iterations (the factor graph is a tree), three values of Δ.  Paper claim:
shorter cycles provide much stronger evidence; cycles longer than about ten
mappings provide very little evidence, even for small Δ.
"""

from repro.evaluation.experiments import run_cycle_length
from repro.evaluation.reporting import format_comparison, format_table


def run():
    return run_cycle_length(lengths=tuple(range(2, 21)), deltas=(0.01, 0.1, 0.2))


def test_bench_fig10_cycle_length(benchmark, report):
    # A single timed round: the 20-mapping cycle owns a 2^20-entry feedback
    # factor, which makes each round deliberately heavy.
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lengths = [length for length, _ in result.series[0.1]]
    rows = []
    for index, length in enumerate(lengths):
        rows.append(
            (
                length,
                result.series[0.01][index][1],
                result.series[0.1][index][1],
                result.series[0.2][index][1],
            )
        )
    by_delta = {delta: dict(points) for delta, points in result.series.items()}
    lines = [
        format_comparison("posterior at length 2 (Δ=0.1)", "~0.9", by_delta[0.1][2]),
        format_comparison("posterior at length 10 (Δ=0.1)", "≈0.5 (no evidence)", by_delta[0.1][10]),
        format_comparison("posterior at length 10 (Δ=0.01)", "noticeably above 0.5", by_delta[0.01][10]),
        format_comparison("posterior at length 20 (any Δ)", "≈0.5", by_delta[0.01][20]),
        "",
        format_table(
            ("cycle length", "Δ=0.01", "Δ=0.1", "Δ=0.2"),
            rows,
            title="Figure 10 — posterior of a positive cycle (priors 0.5, 2 iterations)",
        ),
    ]
    report("E4_fig10_cycle_length", "\n".join(lines))

    for delta, points in result.series.items():
        values = dict(points)
        assert values[2] > values[10] - 1e-9
        assert abs(values[20] - 0.5) < 0.02
    assert by_delta[0.01][10] > by_delta[0.1][10]
