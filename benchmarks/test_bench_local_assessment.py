"""Extra ablation — batched all-origins decentralised assessment vs
engine-per-origin.

PR 3 batched the global multi-attribute sweep; the per-peer decentralised
view of §4.5 — *every* peer judging its own outgoing mappings from its own
probe evidence, the traffic model of a live PDMS — still probed and ran one
sequential engine per origin.  This benchmark times the full all-origins
``assess_local_all`` pass on a 32-peer scale-free network with the
per-origin sequential path and with the block-diagonal
:class:`~repro.core.batched.BlockedEmbeddedMessagePassing` over one compiled
per-origin :class:`~repro.core.batched.AssessmentPlan`, lossless and lossy,
and doubles as a regression tripwire: the batched pass must stay ≥3x ahead
of the sequential one at 32 peers while reproducing its local views to
``1e-9``, compiling the local plan exactly once, and probing each origin's
neighbourhood exactly once per network version.
"""

import pytest

from repro.core.quality import MappingQualityAssessor
from repro.evaluation.experiments import run_local_assessment
from repro.evaluation.reporting import format_table
from repro.generators.scenarios import generate_scenario

SIZES = (16, 32)

#: Acceptance floor for the batched all-origins pass over engine-per-origin
#: at 32 peers (measured ~3.7x lossless / ~4.2x lossy; the floor leaves
#: noise headroom).
MIN_SPEEDUP_AT_32_PEERS = 3.0

#: Both paths seed one transport per origin identically and consume the rng
#: in the same transmission order, so local views may only differ by
#: accumulated floating-point noise (in practice they match bit for bit).
MAX_POSTERIOR_DIVERGENCE = 1e-9

LOSSY_SEND_PROBABILITY = 0.7


def _row(point, label):
    return (
        point.peer_count,
        label,
        point.origin_count,
        point.structure_count,
        f"{point.sequential_seconds * 1e3:.1f}",
        f"{point.batched_seconds * 1e3:.1f}",
        f"{point.speedup:.1f}x",
        f"{point.max_posterior_difference:.1e}",
    )


@pytest.mark.parametrize("peer_count", SIZES)
def test_bench_local_assessment(benchmark, report, report_json, peer_count):
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=peer_count,
        attribute_count=10,
        error_rate=0.15,
        seed=peer_count,
    )
    network = scenario.network
    attribute = network.attribute_universe()[0]
    assessor = MappingQualityAssessor(
        network, delta=None, ttl=3, include_parallel_paths=False, seed=0
    )
    for origin in network.peer_names:
        assessor.neighborhood_cache.structures_for(origin)
    benchmark(assessor.assess_local_all, attribute)

    lossless = run_local_assessment(
        peer_counts=(peer_count,), repeats=3
    ).point_for(peer_count)
    lossy = run_local_assessment(
        peer_counts=(peer_count,),
        repeats=1,
        send_probability=LOSSY_SEND_PROBABILITY,
    ).point_for(peer_count)

    lines = format_table(
        (
            "peers",
            "transport",
            "origins",
            "structures",
            "sequential ms",
            "batched ms",
            "speedup",
            "max |Δposterior|",
        ),
        [
            _row(lossless, "lossless"),
            _row(lossy, f"P(send)={LOSSY_SEND_PROBABILITY}"),
        ],
        title=(
            f"Local assessment — batched per-origin lanes vs "
            f"engine-per-origin on the {peer_count}-peer scale-free network"
        ),
    )
    report(f"EX_local_assessment_{peer_count}_peers", lines)
    report_json(
        f"local_assessment_{peer_count}_peers",
        {
            "peer_count": peer_count,
            "origin_count": lossless.origin_count,
            "attribute": lossless.attribute,
            "structure_count": lossless.structure_count,
            "mapping_count": lossless.mapping_count,
            "sequential_seconds": lossless.sequential_seconds,
            "batched_seconds": lossless.batched_seconds,
            "speedup": lossless.speedup,
            "batched_origins_per_second": lossless.batched_origins_per_second,
            "lossy_speedup": lossy.speedup,
            "max_posterior_difference": lossless.max_posterior_difference,
            "lossy_max_posterior_difference": lossy.max_posterior_difference,
            "probes": lossless.probes,
            "plan_compiles": lossless.plan_compiles,
        },
    )

    # Both paths must see the exact same per-origin inference problems, and
    # the cache must probe each origin exactly once.
    assert lossless.origin_count == peer_count
    assert lossless.probes == peer_count
    assert lossy.probes == peer_count
    assert lossless.plan_compiles == 1
    assert lossy.plan_compiles == 1
    assert lossless.max_posterior_difference <= MAX_POSTERIOR_DIVERGENCE
    assert lossy.max_posterior_difference <= MAX_POSTERIOR_DIVERGENCE
    if peer_count >= 32:
        assert lossless.speedup >= MIN_SPEEDUP_AT_32_PEERS, (
            f"batched all-origins pass is only {lossless.speedup:.1f}x faster "
            f"than engine-per-origin at {peer_count} peers "
            f"(floor {MIN_SPEEDUP_AT_32_PEERS}x)"
        )


def test_bench_local_probe_once_per_version(report):
    """``assess_local_all`` probes each origin and compiles the local plan
    exactly once per network version, across attributes and EM rounds."""
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=32,
        attribute_count=10,
        error_rate=0.15,
        seed=32,
    )
    network = scenario.network
    assessor = MappingQualityAssessor(
        network, delta=None, ttl=3, include_parallel_paths=False, seed=0
    )
    attributes = network.attribute_universe()[:3]
    for _ in range(2):
        for attribute in attributes:
            assessor.assess_local_all(attribute)
    statistics = assessor.neighborhood_cache.statistics
    assert statistics.probes == len(network.peer_names)
    assert assessor.local_plan_compile_count == 1

    # A topology mutation refreshes incrementally (no new full probes) and
    # recompiles the plan exactly once more.
    removed = network.mapping_names[0]
    network.remove_mapping(removed)
    assessor.assess_local_all(attributes[0])
    assert statistics.probes == len(network.peer_names)
    assert statistics.partial_refreshes == len(network.peer_names)
    assert assessor.local_plan_compile_count == 2
    report(
        "EX_local_plan_reuse",
        "local plan compiles: 1 across 2 EM passes x 3 attributes, "
        "2 after remove_mapping\n"
        f"probes: {statistics.probes} full, "
        f"{statistics.partial_refreshes} partial",
    )
