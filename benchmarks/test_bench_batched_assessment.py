"""Extra ablation — batched all-attribute assessment vs engine-per-attribute.

PR 2 left the per-attribute embedded engine *construction* as the top
remaining perf lever: ``assess_all_attributes`` rebuilt factor tables, index
plans and einsum operands for every attribute even though the cached
cycle/parallel-path structures are shared.  This benchmark times the full
multi-attribute sweep on a 32-peer scale-free network with the sequential
engine-per-attribute path and with the batched
:class:`~repro.core.batched.BatchedEmbeddedMessagePassing` over one compiled
:class:`~repro.core.batched.AssessmentPlan`, lossless and lossy, and doubles
as a regression tripwire: the batched sweep must stay ≥3x ahead of the
sequential one at 32 peers while reproducing its posteriors to ``1e-9`` and
compiling the plan exactly once.
"""

import pytest

from repro.core.quality import MappingQualityAssessor
from repro.evaluation.experiments import run_batched_assessment
from repro.evaluation.reporting import format_table
from repro.generators.scenarios import generate_scenario

SIZES = (16, 32)

#: Acceptance floor for the batched sweep over per-attribute construction
#: at 32 peers (measured ~4x; the floor leaves noise headroom).
MIN_SPEEDUP_AT_32_PEERS = 3.0

#: Both engines seed one transport per attribute identically and consume the
#: rng in the same transmission order, so posteriors may only differ by
#: accumulated floating-point noise (in practice they match bit for bit).
MAX_POSTERIOR_DIVERGENCE = 1e-9

LOSSY_SEND_PROBABILITY = 0.7


def _row(point, label):
    return (
        point.peer_count,
        label,
        point.attribute_count,
        point.structure_count,
        f"{point.sequential_seconds * 1e3:.1f}",
        f"{point.batched_seconds * 1e3:.1f}",
        f"{point.speedup:.1f}x",
        f"{point.max_posterior_difference:.1e}",
    )


@pytest.mark.parametrize("peer_count", SIZES)
def test_bench_batched_assessment(benchmark, report, report_json, peer_count):
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=peer_count,
        attribute_count=10,
        error_rate=0.15,
        seed=peer_count,
    )
    assessor = MappingQualityAssessor(
        scenario.network, delta=None, ttl=3, include_parallel_paths=False, seed=0
    )
    assessor.structure_cache.structures()
    benchmark(assessor.assess_all_attributes)

    lossless = run_batched_assessment(
        peer_counts=(peer_count,), repeats=3
    ).point_for(peer_count)
    lossy = run_batched_assessment(
        peer_counts=(peer_count,),
        repeats=1,
        send_probability=LOSSY_SEND_PROBABILITY,
    ).point_for(peer_count)

    lines = format_table(
        (
            "peers",
            "transport",
            "attributes",
            "structures",
            "sequential ms",
            "batched ms",
            "speedup",
            "max |Δposterior|",
        ),
        [
            _row(lossless, "lossless"),
            _row(lossy, f"P(send)={LOSSY_SEND_PROBABILITY}"),
        ],
        title=(
            f"Batched assessment — one stacked engine vs engine-per-attribute "
            f"on the {peer_count}-peer scale-free network"
        ),
    )
    report(f"EX_batched_assessment_{peer_count}_peers", lines)
    report_json(
        f"batched_assessment_{peer_count}_peers",
        {
            "peer_count": peer_count,
            "attribute_count": lossless.attribute_count,
            "structure_count": lossless.structure_count,
            "mapping_count": lossless.mapping_count,
            "sequential_seconds": lossless.sequential_seconds,
            "batched_seconds": lossless.batched_seconds,
            "speedup": lossless.speedup,
            "batched_attributes_per_second": lossless.batched_attributes_per_second,
            "lossy_speedup": lossy.speedup,
            "max_posterior_difference": lossless.max_posterior_difference,
            "lossy_max_posterior_difference": lossy.max_posterior_difference,
        },
    )

    # The sequential engines must see the exact same inference problem.
    assert lossless.attribute_count >= 5
    assert lossless.plan_compiles == 1
    assert lossy.plan_compiles == 1
    assert lossless.max_posterior_difference <= MAX_POSTERIOR_DIVERGENCE
    assert lossy.max_posterior_difference <= MAX_POSTERIOR_DIVERGENCE
    if peer_count >= 32:
        assert lossless.speedup >= MIN_SPEEDUP_AT_32_PEERS, (
            f"batched sweep is only {lossless.speedup:.1f}x faster than the "
            f"engine-per-attribute path at {peer_count} peers "
            f"(floor {MIN_SPEEDUP_AT_32_PEERS}x)"
        )


def test_bench_plan_compiled_once_per_version(report):
    """``assess_all_attributes`` builds plans/tables once per network version."""
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=32,
        attribute_count=10,
        error_rate=0.15,
        seed=32,
    )
    network = scenario.network
    assessor = MappingQualityAssessor(
        network, delta=None, ttl=3, include_parallel_paths=False, seed=0
    )
    for _ in range(3):
        assessor.assess_all_attributes()
        assessor.update_priors()
    assert assessor.plan_compile_count == 1
    assert assessor.structure_cache.statistics.probes == 1

    # A topology mutation recompiles exactly once more.
    removed = network.mapping_names[0]
    network.remove_mapping(removed)
    assessor.assess_all_attributes()
    assert assessor.plan_compile_count == 2
    report(
        "EX_batched_plan_reuse",
        "plan compiles: 1 across 3 assess+EM passes, 2 after remove_mapping\n"
        f"probes: {assessor.structure_cache.statistics.probes} full, "
        f"{assessor.structure_cache.statistics.partial_refreshes} partial",
    )
