"""Gossip convergence — the event-sourced multi-node harness vs its oracle.

PR 10 put every consumer of topology state behind one typed event log and
added the causally-delivered gossip harness on top.  This benchmark runs
the 32-peer corrupted chord-ring workload — every peer originates its own
``PeerAdded`` and its outgoing ``MappingAdded`` events, a quarter of the
correspondences scripted-corrupted — through a seeded transport that
drops, duplicates and reorders, and measures the replication cost:
rounds to convergence and deliveries applied per second across all 32
event-sourced replicas.  It doubles as a regression tripwire:

* every node's decentralised ``assess_local`` view must equal the
  single-process oracle *exactly* (the runner raises on any divergence —
  a throughput claim is only ever made on verified-identical views);
* convergence must land within a fixed round budget despite 5% loss and
  5% duplication (catches anti-entropy regressions);
* the replicas must sustain a minimum delivery rate (catches accidental
  quadratic cost in the journal's causal-delivery path).
"""

import os

import pytest

from repro.evaluation.experiments import run_gossip_convergence
from repro.evaluation.reporting import format_table

PEER_COUNT = 32

FANOUT = 3

DROP_PROBABILITY = 0.05
DUPLICATE_PROBABILITY = 0.05

#: A fanout-3 push over 32 peers spreads an entry in O(log n) rounds;
#: with 5% loss the anti-entropy re-push closes the gap within a few
#: more.  Measured 5+6 rounds on the baseline machine; the ceiling
#: leaves room for unlucky seeds without hiding real regressions.
MAX_TOTAL_ROUNDS = 40

#: Deliveries applied across all replicas per gossip second (measured
#: ~24k/s on the baseline machine; an order of magnitude of headroom for
#: slow CI runners).
MIN_DELIVERIES_PER_SECOND = 2_000


def test_bench_gossip_convergence(benchmark, report, report_json):
    result = run_gossip_convergence(
        peer_counts=(PEER_COUNT,),
        fanout=FANOUT,
        drop_probability=DROP_PROBABILITY,
        duplicate_probability=DUPLICATE_PROBABILITY,
    )
    point = result.point_for(PEER_COUNT)

    # Time the full gossip-to-convergence cycle (workload build, two
    # causally-ordered origination phases, parity check) under
    # pytest-benchmark as well, so the end-to-end cost is tracked.
    benchmark(
        run_gossip_convergence,
        peer_counts=(PEER_COUNT,),
        fanout=FANOUT,
        drop_probability=DROP_PROBABILITY,
        duplicate_probability=DUPLICATE_PROBABILITY,
    )

    lines = format_table(
        (
            "peers",
            "mappings",
            "events",
            "rounds",
            "buffered",
            "dups dropped",
            "msgs lost",
            "deliveries/s",
            "oracle parity",
        ),
        [
            (
                point.peer_count,
                point.mapping_count,
                point.event_count,
                f"{point.peer_rounds}+{point.mapping_rounds}",
                point.deliveries_buffered,
                point.duplicates_dropped,
                point.messages_dropped,
                f"{point.events_per_second:,.0f}",
                "exact" if point.views_identical else "DIVERGED",
            )
        ],
        title=(
            f"Gossip convergence — {PEER_COUNT} event-sourced replicas vs "
            f"the single-process oracle (fanout={FANOUT}, "
            f"P(drop)=P(dup)={DROP_PROBABILITY}, "
            f"attribute={result.attribute!r})"
        ),
    )
    report(f"EX_gossip_convergence_{PEER_COUNT}_peers", lines)
    report_json(
        f"gossip_convergence_{PEER_COUNT}_peers",
        {
            "peer_count": point.peer_count,
            "mapping_count": point.mapping_count,
            "event_count": point.event_count,
            "corrupted_correspondences": point.corrupted_correspondences,
            "peer_rounds": point.peer_rounds,
            "mapping_rounds": point.mapping_rounds,
            "total_rounds": point.total_rounds,
            "gossip_seconds": point.gossip_seconds,
            "deliveries_applied": point.deliveries_applied,
            "events_per_second": point.events_per_second,
            "duplicates_dropped": point.duplicates_dropped,
            "deliveries_buffered": point.deliveries_buffered,
            "messages_sent": point.messages_sent,
            "messages_dropped": point.messages_dropped,
            "messages_duplicated": point.messages_duplicated,
            "fanout": point.fanout,
            "drop_probability": point.drop_probability,
            "duplicate_probability": point.duplicate_probability,
            "seed": point.seed,
            "origins_compared": point.origins_compared,
            "views_identical": point.views_identical,
            "cpu_count": os.cpu_count(),
        },
    )

    # run_gossip_convergence has already compared every node's local view
    # against the oracle (it raises on divergence); assert the run
    # actually exercised the machinery the harness claims to cover.
    assert point.views_identical
    assert point.origins_compared == PEER_COUNT
    assert point.event_count == PEER_COUNT + point.mapping_count
    assert point.corrupted_correspondences > 0
    assert point.messages_dropped > 0, (
        "the transport dropped nothing — the loss schedule is not "
        "exercising the anti-entropy re-push"
    )
    assert point.duplicates_dropped > 0
    assert point.total_rounds <= MAX_TOTAL_ROUNDS, (
        f"gossip needed {point.total_rounds} rounds to converge "
        f"{PEER_COUNT} peers (ceiling {MAX_TOTAL_ROUNDS})"
    )
    assert point.events_per_second >= MIN_DELIVERIES_PER_SECOND, (
        f"replicas applied only {point.events_per_second:,.0f} "
        f"deliveries/s (floor {MIN_DELIVERIES_PER_SECOND:,})"
    )
