"""E2 — Figure 7: convergence of the iterative message passing.

Setting: the Figure 4 example graph (five mappings, three cycle feedbacks
f1+, f2−, f3−), Δ = 0.1, priors at 0.7.  Paper claim: the embedded scheme
"converges to approximate results in ten iterations usually"; the correct
mappings converge to a high posterior, the faulty one (m24) to a low one.
"""

from repro.evaluation.experiments import run_convergence
from repro.evaluation.reporting import format_comparison, format_table


def test_bench_fig7_convergence(benchmark, report):
    result = benchmark.pedantic(run_convergence, rounds=5, iterations=1)

    trajectory_rows = []
    for iteration in range(result.iterations):
        trajectory_rows.append(
            (
                iteration + 1,
                result.history["p2->p3"][iteration],
                result.history["p2->p4"][iteration],
            )
        )
    lines = [
        format_comparison("iterations to converge", "~10", result.iterations),
        format_comparison(
            "final posterior of the correct mappings", "high (>0.7)",
            result.final_posteriors["p2->p3"],
        ),
        format_comparison(
            "final posterior of the faulty mapping m24", "low (<0.3)",
            result.final_posteriors["p2->p4"],
        ),
        "",
        format_table(
            ("iteration", "P(m23 correct)", "P(m24 correct)"),
            trajectory_rows,
            title="Figure 7 — posterior trajectory (priors 0.7, Δ=0.1, f1+, f2-, f3-)",
        ),
    ]
    report("E2_fig7_convergence", "\n".join(lines))

    assert result.converged
    assert result.iterations <= 15
    assert result.final_posteriors["p2->p4"] < 0.3
    assert result.final_posteriors["p2->p3"] > 0.7
