"""Extra ablation — runtime scalability of the embedded message passing.

Not a figure of the paper, but the paper repeatedly claims the scheme is
"computationally efficient as it is solely based on sum–product operations"
and discusses TTL-bounded probing as the lever that keeps neighbourhoods
small (§5.1.2).  This benchmark measures the wall-clock cost of a full
assessment round on generated scale-free PDMS of growing size, so that
regressions in the inference engine show up.
"""

import pytest

from repro.core.quality import MappingQualityAssessor
from repro.evaluation.reporting import format_table
from repro.generators.scenarios import generate_scenario

SIZES = (8, 16, 32, 64, 128)


def assess(network, attribute):
    assessor = MappingQualityAssessor(network, delta=None, ttl=3, include_parallel_paths=False)
    return assessor.assess_attribute(attribute)


@pytest.mark.parametrize("peer_count", SIZES)
def test_bench_scalability(benchmark, report, peer_count):
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=peer_count,
        attribute_count=10,
        error_rate=0.15,
        seed=peer_count,
    )
    attribute = scenario.network.attribute_universe()[0]
    assessment = benchmark(assess, scenario.network, attribute)

    lines = format_table(
        ("peers", "mappings", "cycles found", "mappings with evidence"),
        [
            (
                peer_count,
                len(scenario.network.mappings),
                len(assessment.evidence.cycles),
                len(assessment.posteriors),
            )
        ],
        title=f"Scalability — one assessment round on a {peer_count}-peer scale-free PDMS",
    )
    report(f"EX_scalability_{peer_count}_peers", lines)

    assert assessment.converged or assessment.iterations > 0
