"""E1 — the worked example of §4.5 (and the introductory example of §1.2).

Paper reference values: with uniform priors and Δ = 0.1, the posteriors of
p2's mappings towards p3 and p4 converge to 0.59 and 0.30; the updated
priors become 0.55 and 0.40; the query of §1.2 is routed around the faulty
``p2→p4`` mapping and returns no false positives.
"""

from repro.evaluation.experiments import run_intro_example
from repro.evaluation.reporting import format_comparison, format_table


def test_bench_intro_example(benchmark, report):
    result = benchmark.pedantic(run_intro_example, rounds=3, iterations=1)

    lines = [
        format_comparison(
            "posterior P(p2->p3 correct)", 0.59, result.posteriors["p2->p3"],
            note="paper value is exact inference; ours is the embedded loopy estimate",
        ),
        format_comparison(
            "posterior P(p2->p4 correct)", 0.30, result.posteriors["p2->p4"]
        ),
        format_comparison(
            "updated prior p2->p3", 0.55, result.updated_priors["p2->p3"]
        ),
        format_comparison(
            "updated prior p2->p4", 0.40, result.updated_priors["p2->p4"]
        ),
        format_comparison("iterations ('a handful')", "~5-10", result.iterations),
        "",
        format_table(
            ("router", "answers", "false positives", "blocked mappings"),
            [
                ("standard PDMS", result.standard_answer_count, result.standard_false_positive_count, "-"),
                ("quality-aware (θ=0.5)", result.aware_answer_count, result.aware_false_positive_count, ", ".join(result.blocked_mappings)),
            ],
            title="§1.2 river-artists query",
        ),
    ]
    report("E1_intro_example", "\n".join(lines))

    assert result.posteriors["p2->p4"] < 0.5 < result.posteriors["p2->p3"]
    assert "p2->p4" in result.blocked_mappings
    assert result.aware_false_positive_count == 0
