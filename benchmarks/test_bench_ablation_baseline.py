"""E7 — ablation: probabilistic inference vs the earlier Chatty-Web heuristic.

The paper's related-work discussion (§6) notes that its earlier, purely
deductive approach would disqualify all three mappings sitting on the
negative structures of the introductory example, while only one of them is
actually faulty; the probabilistic scheme, by modelling the correlations
between mappings and cycles, gets all five mappings right.
"""

from repro.evaluation.experiments import run_baseline_comparison
from repro.evaluation.reporting import format_comparison, format_table


def test_bench_ablation_baseline(benchmark, report):
    result = benchmark.pedantic(run_baseline_comparison, rounds=3, iterations=1)

    lines = [
        format_comparison(
            "mappings flagged by the probabilistic scheme", "only p2->p4",
            ", ".join(result.probabilistic_flagged),
        ),
        format_comparison(
            "mappings flagged by the Chatty-Web heuristic",
            "all mappings on negative structures",
            ", ".join(result.baseline_flagged),
        ),
        "",
        format_table(
            ("detector", "precision", "recall", "F1"),
            [
                (
                    "probabilistic message passing",
                    result.probabilistic.precision,
                    result.probabilistic.recall,
                    result.probabilistic.f1,
                ),
                (
                    "Chatty-Web heuristic",
                    result.baseline.precision,
                    result.baseline.recall,
                    result.baseline.f1,
                ),
            ],
            title="Ablation — detection quality on the introductory example (θ=0.5)",
        ),
    ]
    report("E7_ablation_baseline", "\n".join(lines))

    assert result.probabilistic_flagged == ("p2->p4",)
    assert result.probabilistic.precision > result.baseline.precision
    assert result.probabilistic.f1 > result.baseline.f1
