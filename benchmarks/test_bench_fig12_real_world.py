"""E6 — Figure 12: precision on the (synthetic) EON bibliography schemas.

Setting: six bibliographic ontologies of ~30 concepts, automatically aligned
(≈400 generated correspondences, a substantial minority of which is wrong),
uniform priors, Δ = 0.1, one assessment round per peer and attribute.

Paper reference points: 396 generated mappings, 86 erroneous; precision of
80% or more for low θ, decreasing as θ grows; at the θ = 0.6 phase
transition about half of the erroneous mappings have been discovered; always
significantly better than random guessing.

Our ontologies are synthetic stand-ins (see DESIGN.md), so the absolute
recall differs — notably, reciprocal faux-ami errors (French *Editeur* ↔
English *Editor*) are self-consistent around every cycle and therefore
invisible to any consistency-based detector — but the precision/θ shape and
the better-than-random margin reproduce.
"""

from repro.evaluation.experiments import run_real_world
from repro.evaluation.reporting import format_comparison, format_table

THETAS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run():
    return run_real_world(thetas=THETAS)


def test_bench_fig12_real_world(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for theta in THETAS:
        metrics = result.metrics[theta]
        rows.append(
            (theta, metrics.precision, metrics.recall, metrics.counts.flagged)
        )
    random_precision = result.erroneous_count / result.correspondence_count
    lines = [
        format_comparison("generated correspondences", 396, result.correspondence_count),
        format_comparison("erroneous correspondences", 86, result.erroneous_count),
        format_comparison("precision at low θ (0.2)", ">= 0.8", result.precision_at(0.2)),
        format_comparison("precision at high θ (0.9)", "lower, still >> random", result.precision_at(0.9)),
        format_comparison("random-guess precision", random_precision, random_precision),
        format_comparison(
            "erroneous mappings discovered at θ=0.6",
            "~50% (real EON data)",
            result.recall_at(0.6),
            note="lower here: the synthetic faux-ami errors are reciprocal and hence self-consistent",
        ),
        "",
        format_table(
            ("θ", "precision", "recall", "flagged"),
            rows,
            title="Figure 12 — precision of the message passing approach vs θ",
        ),
    ]
    report("E6_fig12_real_world", "\n".join(lines))

    assert 300 <= result.correspondence_count <= 500
    assert result.precision_at(0.2) >= 0.8
    assert result.precision_at(0.9) > 2 * random_precision
