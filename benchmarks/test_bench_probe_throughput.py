"""Probe throughput — origin-sharded process-pool discovery vs the serial
walkers.

PR 6 compiled the sweeps; per the roadmap the wall at 1k+ peers is now the
*probe* phase: cycle / parallel-path enumeration is recursive sequential
Python.  This benchmark times one full-probe
:class:`~repro.pdms.discovery.ProbePlan` — every peer's cycles-through and
paths-from work units at ttl 3 — on scale-free networks of 256 and 1024
peers, executed serially and origin-sharded over a ``multiprocessing``
pool, and doubles as a regression tripwire:

* the merged structure lists of the two executors must be canonically
  identical (the runner raises on any divergence — a speedup claim is only
  ever made on verified-equal output);
* serial discovery must sustain a minimum structure-enumeration rate
  (catches accidental quadratic regressions in the walkers);
* on a multi-core machine the process-pool executor must beat serial
  discovery by ≥2x at 1024 peers (the floor is skipped on single-core
  runners, where the pool degenerates to an inlined serial run).
"""

import os

import pytest

from repro.evaluation.experiments import run_probe_throughput
from repro.evaluation.reporting import format_table

SIZES = (256, 1024)

TTL = 3

#: Process-pool floor over serial discovery at 1024 peers.  Only asserted
#: when the machine has at least 2 cores: with a single core the pool
#: executor inlines the plan serially (``sharded=False``) and a speedup is
#: meaningless.
MIN_SHARDED_SPEEDUP_AT_1024_PEERS = 2.0

#: Serial enumeration floor, structures per second, both sizes (measured
#: ~47k/s at 256 peers and ~32k/s at 1024 on the baseline machine; the
#: floor leaves an order of magnitude of headroom for slow CI runners).
MIN_SERIAL_STRUCTURES_PER_SECOND = 4_000

#: Timing repeats (best-of).  One repeat at 1024 peers keeps the benchmark
#: wall time sane; the enumeration is long enough to be noise-free.
REPEATS = {256: 2, 1024: 1}


@pytest.mark.parametrize("peer_count", SIZES)
def test_bench_probe_throughput(benchmark, report, report_json, peer_count):
    result = run_probe_throughput(
        peer_counts=(peer_count,),
        ttl=TTL,
        repeats=REPEATS[peer_count],
    )
    point = result.point_for(peer_count)

    # Time the serial enumeration under pytest-benchmark as well, so the
    # walkers' raw cost is tracked alongside the executor comparison.
    from repro.pdms.discovery import SerialDiscoveryExecutor, plan_full_probe
    from repro.generators.topologies import scale_free_network

    network = scale_free_network(peer_count, seed=peer_count)
    plan = plan_full_probe(network, ttl=TTL, include_parallel_paths=True)
    benchmark(SerialDiscoveryExecutor().run, plan)

    lines = format_table(
        (
            "peers",
            "mappings",
            "work units",
            "structures",
            "serial ms",
            "process ms",
            "speedup",
            "workers",
        ),
        [
            (
                point.peer_count,
                point.mapping_count,
                point.work_units,
                point.structure_count,
                f"{point.serial_seconds * 1e3:.1f}",
                f"{point.process_seconds * 1e3:.1f}",
                f"{point.speedup:.1f}x",
                f"{point.workers}" if point.sharded else "inline",
            )
        ],
        title=(
            f"Probe throughput — origin-sharded discovery vs serial walkers "
            f"on the {peer_count}-peer scale-free network (ttl={TTL}, "
            "structure sets verified identical)"
        ),
    )
    report(f"EX_probe_throughput_{peer_count}_peers", lines)
    report_json(
        f"probe_throughput_{peer_count}_peers",
        {
            "peer_count": point.peer_count,
            "ttl": point.ttl,
            "mapping_count": point.mapping_count,
            "work_units": point.work_units,
            "cycle_count": point.cycle_count,
            "parallel_path_count": point.parallel_path_count,
            "structure_count": point.structure_count,
            "serial_seconds": point.serial_seconds,
            "process_seconds": point.process_seconds,
            "speedup": point.speedup,
            "serial_structures_per_second": point.serial_structures_per_second,
            "process_structures_per_second": point.process_structures_per_second,
            "sharded": point.sharded,
            "workers": point.workers,
            "cpu_count": os.cpu_count(),
        },
    )

    # run_probe_throughput has already verified canonical identity of the
    # sharded and serial structure lists (it raises on divergence); assert
    # the run actually enumerated a non-trivial frontier.
    assert point.work_units == 2 * peer_count
    assert point.structure_count > peer_count
    assert (
        point.serial_structures_per_second >= MIN_SERIAL_STRUCTURES_PER_SECOND
    ), (
        f"serial discovery enumerates only "
        f"{point.serial_structures_per_second:,.0f} structures/s at "
        f"{peer_count} peers (floor {MIN_SERIAL_STRUCTURES_PER_SECOND:,})"
    )
    cores = os.cpu_count() or 1
    if peer_count >= 1024 and cores >= 2:
        assert point.sharded, (
            f"process-pool executor did not shard the {peer_count}-peer "
            f"frontier despite {cores} cores"
        )
        assert point.speedup >= MIN_SHARDED_SPEEDUP_AT_1024_PEERS, (
            f"origin-sharded discovery is only {point.speedup:.1f}x faster "
            f"than serial at {peer_count} peers on {cores} cores "
            f"(floor {MIN_SHARDED_SPEEDUP_AT_1024_PEERS}x)"
        )
