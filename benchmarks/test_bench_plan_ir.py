"""Plan IR + pluggable executors — the shared compiled core's two levers.

The :mod:`repro.factorgraph.plan` IR gives every engine the same lowered
sweep: edge row space, segment plans, transmission list and arity-bucketed
kernel batches, executed by a pluggable executor.  This benchmark pins the
two performance levers that landed with it:

* the *fused all-targets kernel* (``messages_all``): evaluating a count
  bucket's messages toward every target slot from one pre-gathered operand
  array, instead of re-stacking ``arity - 1`` operand matrices per target —
  the O(arity²) constant of the historical sweep loop.  Must stay ≥3x ahead
  of the per-target loop at small bucket sizes and match it bit for bit.
* the *threaded executor*: independent arity buckets scatter to disjoint
  edge rows, so they run concurrently on a shared thread pool.  Results
  must stay bit-identical to the NumPy executor on the full batched
  multi-attribute sweep; on multi-core hosts the sweep must also get
  faster (the floor is skipped on single-core CI runners, where a thread
  pool cannot win).
"""

import os
import time

import numpy as np
import pytest

from repro.core.quality import MappingQualityAssessor
from repro.factorgraph.plan import CountFactorBatch
from repro.factorgraph.factors import CountFactor
from repro.factorgraph.variables import BinaryVariable
from repro.generators.scenarios import generate_scenario

#: The fused-kernel measurement point: one count bucket far past the
#: crossover with few structures — where the per-target Python loop's
#: operand re-stacking dominates (measured ~7x; the floor leaves noise
#: headroom).
KERNEL_ARITY = 40
KERNEL_BUCKET_SIZE = 16
MIN_KERNEL_SPEEDUP = 3.0

#: Threaded-executor floor on the batched multi-attribute sweep, asserted
#: only when the host actually has cores to fan out to.
MIN_THREADED_SPEEDUP = 1.5

REPEATS = 30


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_plan_ir_fused_kernel(benchmark, report, report_json):
    arity, size = KERNEL_ARITY, KERNEL_BUCKET_SIZE
    values = np.array([1.0, 0.0] + [0.1] * (arity - 1))
    factors = [
        CountFactor(
            f"f{i}",
            [BinaryVariable(f"v{i}_{slot}") for slot in range(arity)],
            values,
        )
        for i in range(size)
    ]
    kernel = CountFactorBatch(factors)
    rng = np.random.default_rng(0)
    incoming = rng.uniform(0.1, 1.0, size=(arity, size, 2))
    # The (arity, arity - 1, size, 2) layout the plan's gather_all produces:
    # for each target, the non-target operands in ascending slot order.
    gathered = np.stack(
        [incoming[[s for s in range(arity) if s != t]] for t in range(arity)]
    )

    def per_target():
        return np.stack(
            [
                kernel.messages_toward(
                    t, [incoming[s] if s != t else None for s in range(arity)]
                )
                for t in range(arity)
            ]
        )

    def fused():
        return kernel.messages_all(gathered)

    # The fused path is a reshuffle of the same float operations: bitwise
    # identity, not approximation, for every target slot.
    assert np.array_equal(per_target(), fused())

    per_target_seconds = _best_of(per_target)
    fused_seconds = _best_of(fused)
    benchmark(fused)
    speedup = per_target_seconds / fused_seconds

    lines = (
        f"count bucket: arity {arity}, {size} structures\n"
        f"per-target sweep loop: {per_target_seconds * 1e3:.3f} ms\n"
        f"fused messages_all:    {fused_seconds * 1e3:.3f} ms\n"
        f"speedup: {speedup:.1f}x (floor {MIN_KERNEL_SPEEDUP}x), "
        "bitwise identical"
    )
    report("EX_plan_ir_fused_kernel", lines)
    report_json(
        "plan_ir_fused_kernel",
        {
            "arity": arity,
            "bucket_size": size,
            "per_target_seconds": per_target_seconds,
            "fused_seconds": fused_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"fused messages_all is only {speedup:.1f}x faster than the "
        f"per-target sweep loop (floor {MIN_KERNEL_SPEEDUP}x)"
    )


def test_bench_plan_ir_threaded_executor(report, report_json):
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=32,
        attribute_count=10,
        error_rate=0.15,
        seed=32,
    )
    network = scenario.network

    def sweep(executor):
        best = float("inf")
        assessments = None
        for _ in range(3):
            assessor = MappingQualityAssessor(
                network,
                delta=None,
                ttl=3,
                include_parallel_paths=False,
                seed=0,
                executor=executor,
            )
            assessor.structure_cache.structures()
            start = time.perf_counter()
            assessments = assessor.assess_all_attributes()
            best = min(best, time.perf_counter() - start)
        return assessments, best

    numpy_assessments, numpy_seconds = sweep("numpy")
    threaded_assessments, threaded_seconds = sweep("threaded")

    # Buckets scatter to disjoint edge rows, so the thread fan-out must not
    # change a single bit of any posterior.
    assert set(numpy_assessments) == set(threaded_assessments)
    for attribute, assessment in numpy_assessments.items():
        assert (
            threaded_assessments[attribute].posteriors == assessment.posteriors
        )
        assert (
            threaded_assessments[attribute].iterations == assessment.iterations
        )

    cpu_count = os.cpu_count() or 1
    speedup = numpy_seconds / threaded_seconds
    lines = (
        "batched multi-attribute sweep (32-peer scale-free, 10 attributes)\n"
        f"numpy executor:    {numpy_seconds * 1e3:.1f} ms\n"
        f"threaded executor: {threaded_seconds * 1e3:.1f} ms\n"
        f"speedup: {speedup:.2f}x on {cpu_count} cores, posteriors "
        "bit-identical"
    )
    report("EX_plan_ir_threaded", lines)
    report_json(
        "plan_ir_threaded",
        {
            "peer_count": 32,
            "attribute_count": 10,
            "cpu_count": cpu_count,
            "numpy_seconds": numpy_seconds,
            "threaded_seconds": threaded_seconds,
            "speedup": speedup,
        },
    )
    if cpu_count < 2:
        pytest.skip(
            "single-core host: a thread pool cannot beat the sequential "
            "executor (bit-identity asserted above)"
        )
    assert speedup >= MIN_THREADED_SPEEDUP, (
        f"threaded executor is only {speedup:.2f}x faster than the numpy "
        f"executor on {cpu_count} cores (floor {MIN_THREADED_SPEEDUP}x)"
    )
