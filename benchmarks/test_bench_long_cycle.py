"""Extra ablation — count-space kernels on long cycles vs the loop reference.

Before this benchmark existed the workload it times was impossible: every
structure above the dense einsum limit (``MAX_COMPILED_ARITY`` = 25 slots)
rejected compilation, and the sequential fallback could not even build its
``(2,)**arity`` CPTs.  The count-space kernels
(:class:`~repro.factorgraph.compiled.CountFactorBatch` /
:class:`~repro.factorgraph.compiled.StackedCountFactorBatch`) evaluate the
same sum–product sweep from the ``arity + 1`` count-value vector in
O(arity²) time and O(arity) table memory per structure, so a network of
30- and 40-mapping rings now compiles and runs on the vectorized, batched
and blocked engines alike.

Doubles as a regression tripwire: the vectorized count kernels must stay
≥5x ahead of the loop reference at cycle length 30 while matching its
marginals — and the batched / blocked assessor paths — to ``1e-9``, with
every long bucket on the count kernel (no dense table, no sequential
fallback).  A second test pins the blocked engine's frozen-block
compaction: per-round work must *decrease* as origins converge instead of
every row riding the sweeps until the last origin finishes.
"""

import pytest

from repro.core.quality import MappingQualityAssessor
from repro.evaluation.experiments import run_long_cycle_throughput
from repro.evaluation.reporting import format_table
from repro.generators.scenarios import generate_scenario

CYCLE_LENGTHS = (30, 40)
RINGS = 10

#: Acceptance floor for the vectorized count kernels over the loop
#: reference at cycle length 30 (measured ~8x with 10 rings; the floor
#: leaves noise headroom).
MIN_SPEEDUP_AT_30 = 5.0

#: All engine families evaluate the same count-space expression, so
#: marginals may only differ by accumulated floating-point noise (in
#: practice they match bit for bit).
MAX_DIVERGENCE = 1e-9


@pytest.mark.parametrize("cycle_length", CYCLE_LENGTHS)
def test_bench_long_cycle(benchmark, report, report_json, cycle_length):
    result = run_long_cycle_throughput(
        cycle_lengths=(cycle_length,), rings=RINGS, repeats=3
    )
    point = result.point_for(cycle_length)

    # Time the vectorized path once more under pytest-benchmark for the
    # harness' own statistics (the speedup assertion uses the best-of-N
    # timings inside the runner, which include the loop reference).
    benchmark(
        run_long_cycle_throughput,
        cycle_lengths=(cycle_length,),
        rings=RINGS,
        repeats=1,
    )

    lines = format_table(
        (
            "cycle length",
            "rings",
            "edges",
            "loop msg/s",
            "count-kernel msg/s",
            "speedup",
            "max |Δmarginal|",
            "max |Δbatched|",
            "max |Δblocked|",
        ),
        [
            (
                point.cycle_length,
                point.ring_count,
                point.edge_count,
                f"{point.loop_messages_per_second:,.0f}",
                f"{point.vectorized_messages_per_second:,.0f}",
                f"{point.speedup:.1f}x",
                f"{point.max_marginal_difference:.1e}",
                f"{point.batched_max_difference:.1e}",
                f"{point.blocked_max_difference:.1e}",
            )
        ],
        title=(
            f"Long cycles — count-space kernels vs loop reference, "
            f"{point.ring_count} rings of {point.cycle_length} mappings"
        ),
    )
    report(f"EX_long_cycle_{cycle_length}", lines)
    report_json(
        f"long_cycle_{cycle_length}",
        {
            "cycle_length": point.cycle_length,
            "ring_count": point.ring_count,
            "structure_count": point.structure_count,
            "edge_count": point.edge_count,
            "iterations": point.iterations,
            "loop_seconds": point.loop_seconds,
            "vectorized_seconds": point.vectorized_seconds,
            "speedup": point.speedup,
            "loop_messages_per_second": point.loop_messages_per_second,
            "vectorized_messages_per_second": point.vectorized_messages_per_second,
            "max_marginal_difference": point.max_marginal_difference,
            "batched_max_difference": point.batched_max_difference,
            "blocked_max_difference": point.blocked_max_difference,
            "count_kernel_buckets": point.count_kernel_buckets,
            "dense_kernel_buckets": point.dense_kernel_buckets,
            "compaction_edge_counts": list(point.compaction_edge_counts),
        },
    )

    # Long buckets must run on the count kernels — no dense (2,)**arity
    # table, no sequential fallback — and all engine families must agree.
    assert point.structure_count == RINGS
    assert point.count_kernel_buckets >= 1
    assert point.dense_kernel_buckets == 0
    assert point.max_marginal_difference <= MAX_DIVERGENCE
    assert point.batched_max_difference <= MAX_DIVERGENCE
    assert point.blocked_max_difference <= MAX_DIVERGENCE
    if cycle_length == 30:
        assert point.speedup >= MIN_SPEEDUP_AT_30, (
            f"count kernels are only {point.speedup:.1f}x faster than the "
            f"loop reference at cycle length 30 (floor {MIN_SPEEDUP_AT_30}x)"
        )


def test_bench_long_cycle_compaction(report, report_json):
    """Frozen-block compaction: per-round work decreases as origins freeze.

    On a heterogeneous network origins converge at different rounds; the
    blocked engine must shed each frozen origin's rows, so the per-round
    edge-row trajectory is non-increasing and strictly smaller by the end.
    """
    scenario = generate_scenario(
        topology="scale-free",
        peer_count=32,
        attribute_count=10,
        error_rate=0.15,
        seed=32,
    )
    network = scenario.network
    attribute = network.attribute_universe()[0]
    assessor = MappingQualityAssessor(
        network, delta=None, ttl=3, include_parallel_paths=False, seed=0
    )
    assessor.assess_local_all(attribute)
    trajectory = assessor.last_local_round_edge_counts
    assert trajectory, "the batched local sweep recorded no rounds"
    assert all(a >= b for a, b in zip(trajectory, trajectory[1:])), (
        f"per-round work grew: {trajectory}"
    )
    assert trajectory[-1] < trajectory[0], (
        f"no compaction happened over {len(trajectory)} rounds: {trajectory}"
    )
    report(
        "EX_long_cycle_compaction",
        "blocked-engine frozen-block compaction (32-peer scale-free, "
        f"{len(trajectory)} rounds)\n"
        f"edge rows per round: {list(trajectory)}\n"
        f"first {trajectory[0]} -> last {trajectory[-1]} rows "
        f"({1.0 - trajectory[-1] / trajectory[0]:.0%} shed)",
    )
    report_json(
        "long_cycle_compaction",
        {
            "peer_count": 32,
            "rounds": len(trajectory),
            "round_edge_counts": list(trajectory),
            "first_round_rows": trajectory[0],
            "last_round_rows": trajectory[-1],
        },
    )
