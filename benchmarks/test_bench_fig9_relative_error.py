"""E3 — Figure 9: error of the iterative scheme vs exact global inference.

Setting: the example graph grown by inserting peers on the p1→p2 edge
(Figure 8), Δ = 0.1, priors at 0.8, feedback f1+, f2−, f3−, 10 iterations.
Paper claim: "the relative error is bigger for very short cycles but never
reaches 6%".  We report the mean absolute deviation of the posteriors per
configuration (see DESIGN.md for the metric discussion) together with the
worst-case deviation.
"""

from repro.evaluation.experiments import run_relative_error
from repro.evaluation.reporting import format_comparison, format_table


def run():
    return run_relative_error(extra_peer_range=range(0, 8))


def test_bench_fig9_relative_error(benchmark, report):
    result = benchmark.pedantic(run, rounds=3, iterations=1)

    worst = dict(result.worst_case_points)
    rows = [
        (length, error, worst[length]) for length, error in result.points
    ]
    lines = [
        format_comparison("largest mean deviation (shortest cycle)", "< 6%", result.max_error),
        format_comparison(
            "shape", "error decreases as the cycles grow",
            "decreasing" if result.points[0][1] >= result.points[-1][1] else "NOT decreasing",
        ),
        "",
        format_table(
            ("long-cycle length", "mean |Δposterior|", "max |Δposterior|"),
            rows,
            title="Figure 9 — iterative vs exact inference (priors 0.8, Δ=0.1, 10 iterations)",
        ),
    ]
    report("E3_fig9_relative_error", "\n".join(lines))

    assert result.max_error < 0.065
    assert result.points[0][1] >= result.points[-1][1]
