"""E5 — Figure 11: robustness against faulty links (lost messages).

Setting: the example graph, Δ = 0.1, priors at 0.8, f1+, f2−, f3−; every
remote message is transmitted with probability P(send).  Paper claim: the
method always converges, even when 90% of the messages are discarded, and
the number of iterations needed grows (roughly linearly) with the rate of
discarded messages.

Alongside the transport-level experiment this benchmark stresses the
*feedback* itself: a seeded fraction of colluding liar peers flips the sign
of every feedback it originates, and the adversarial experiment records the
rounds until all evidence-covered erroneous mappings drop below θ
(``run_adversarial_feedback``).  Both series land in
``BENCH_fig11_fault_tolerance.json`` so robustness regressions in the
assessment layer stay visible next to the executor-level chaos results.
"""

from repro.evaluation.experiments import (
    run_adversarial_feedback,
    run_fault_tolerance,
)
from repro.evaluation.reporting import format_comparison, format_table

#: Colluding-liar fractions of the adversarial feedback experiment.
LIAR_FRACTIONS = (0.0, 0.1, 0.25, 0.4)

#: Quarantine threshold: a mapping with posterior ≤ θ counts as flagged.
THETA = 0.5


def run():
    return run_fault_tolerance(
        send_probabilities=(1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1),
        repetitions=5,
    )


def run_adversarial():
    return run_adversarial_feedback(
        liar_fractions=LIAR_FRACTIONS,
        peer_count=12,
        attribute_count=3,
        error_rate=0.15,
        priors=0.8,
        theta=THETA,
        max_rounds=40,
        seed=1,
    )


def test_bench_fig11_fault_tolerance(benchmark, report, report_json):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    adversarial = run_adversarial()

    rows = [
        (p_send, 1.0 - p_send, iterations, converged)
        for p_send, iterations, converged in result.points
    ]
    adversarial_rows = [
        (fraction, f"{rounds:.1f}", f"{quarantined:.2f}", f"{false_q:.1f}")
        for fraction, rounds, quarantined, false_q in adversarial.points
    ]
    baseline_iterations = result.iterations_at(1.0)
    lines = [
        format_comparison("always converges (even at 90% loss)", "yes",
                          "yes" if all(c == 1.0 for _, _, c in result.points) else "NO"),
        format_comparison(
            "iterations grow with the discard rate", "monotone growth",
            "monotone" if all(
                a[1] <= b[1] + 1e-9
                for a, b in zip(sorted(result.points, reverse=True), sorted(result.points, reverse=True)[1:])
            ) else "non-monotone",
        ),
        format_comparison("iterations at P(send)=1.0", "~10", baseline_iterations),
        "",
        format_table(
            ("P(send)", "discard rate", "mean iterations to fixed point", "converged fraction"),
            rows,
            title="Figure 11 — convergence under message loss (priors 0.8, Δ=0.1)",
        ),
        "",
        format_table(
            (
                "liar fraction",
                "rounds to θ-quarantine",
                "quarantined fraction",
                "false quarantines",
            ),
            adversarial_rows,
            title=(
                "Adversarial feedback — colluding liars flip their own "
                f"feedback (θ={THETA}, priors 0.8, Δ=0.1, seeded)"
            ),
        ),
    ]
    report("E5_fig11_fault_tolerance", "\n".join(lines))
    report_json(
        "fig11_fault_tolerance",
        {
            "message_loss_points": [
                {
                    "send_probability": p_send,
                    "mean_iterations": iterations,
                    "converged_fraction": converged,
                }
                for p_send, iterations, converged in result.points
            ],
            "adversarial_theta": adversarial.theta,
            "adversarial_max_rounds": adversarial.max_rounds,
            "adversarial_points": [
                {
                    "liar_fraction": fraction,
                    "rounds_to_quarantine": rounds,
                    "quarantined_fraction": quarantined,
                    "false_quarantines": false_q,
                }
                for fraction, rounds, quarantined, false_q in adversarial.points
            ],
        },
    )

    assert all(converged == 1.0 for _, _, converged in result.points)
    assert result.iterations_at(0.1) > result.iterations_at(0.5) > result.iterations_at(1.0)

    # Honest networks quarantine every erroneous mapping almost instantly
    # and frame essentially nobody; colluding liars can only slow the
    # quarantine down (rounds grow with the liar fraction) and frame
    # healthy links (false quarantines grow), never hide the errors here.
    honest = adversarial.point_at(0.0)
    assert honest[2] == 1.0, "honest run failed to quarantine all errors"
    assert honest[3] <= 1.0, "honest run framed healthy mappings"
    rounds_series = [rounds for _, rounds, _, _ in adversarial.points]
    assert rounds_series == sorted(rounds_series), (
        f"rounds-to-quarantine not monotone in the liar fraction: "
        f"{rounds_series}"
    )
    false_series = [false_q for _, _, _, false_q in adversarial.points]
    assert false_series[-1] > false_series[0], (
        "colluding liars framed no healthy mappings — adversarial model "
        "is not biting"
    )
