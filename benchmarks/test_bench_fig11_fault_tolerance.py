"""E5 — Figure 11: robustness against faulty links (lost messages).

Setting: the example graph, Δ = 0.1, priors at 0.8, f1+, f2−, f3−; every
remote message is transmitted with probability P(send).  Paper claim: the
method always converges, even when 90% of the messages are discarded, and
the number of iterations needed grows (roughly linearly) with the rate of
discarded messages.
"""

from repro.evaluation.experiments import run_fault_tolerance
from repro.evaluation.reporting import format_comparison, format_table


def run():
    return run_fault_tolerance(
        send_probabilities=(1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1),
        repetitions=5,
    )


def test_bench_fig11_fault_tolerance(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (p_send, 1.0 - p_send, iterations, converged)
        for p_send, iterations, converged in result.points
    ]
    baseline_iterations = result.iterations_at(1.0)
    lines = [
        format_comparison("always converges (even at 90% loss)", "yes",
                          "yes" if all(c == 1.0 for _, _, c in result.points) else "NO"),
        format_comparison(
            "iterations grow with the discard rate", "monotone growth",
            "monotone" if all(
                a[1] <= b[1] + 1e-9
                for a, b in zip(sorted(result.points, reverse=True), sorted(result.points, reverse=True)[1:])
            ) else "non-monotone",
        ),
        format_comparison("iterations at P(send)=1.0", "~10", baseline_iterations),
        "",
        format_table(
            ("P(send)", "discard rate", "mean iterations to fixed point", "converged fraction"),
            rows,
            title="Figure 11 — convergence under message loss (priors 0.8, Δ=0.1)",
        ),
    ]
    report("E5_fig11_fault_tolerance", "\n".join(lines))

    assert all(converged == 1.0 for _, _, converged in result.points)
    assert result.iterations_at(0.1) > result.iterations_at(0.5) > result.iterations_at(1.0)
