"""Extra ablation — round throughput of the embedded state backends.

The ROADMAP's remaining embedded perf levers were the variable→factor phase
and the transport exchange, both dict-based after PR 1.  This benchmark
times full decentralised rounds on growing scale-free cycle evidence with
the historical per-message dict state (``backend="dicts"``) and the stacked
array state (``backend="arrays"``), lossless and lossy, and doubles as a
regression tripwire: the array state must stay well ahead of the dicts
(≥5x per round at 64 peers) while reproducing the dict posteriors to
``1e-12`` under shared transport seeds.  A second test pins the probe-once
structure cache of :class:`~repro.core.quality.MappingQualityAssessor`:
assessing every attribute of a 32-peer network must enumerate the cycle
structures exactly once.
"""

import pytest

from repro.core.embedded import EmbeddedMessagePassing, EmbeddedOptions
from repro.evaluation.experiments import (
    run_assessor_amortization,
    run_embedded_throughput,
    throughput_feedbacks,
)
from repro.evaluation.reporting import format_table

SIZES = (16, 32, 64)

#: Acceptance floor for the array state on the 64-peer evidence.
MIN_SPEEDUP_AT_64_PEERS = 5.0

#: Both backends replay the same message schedule under a shared seed, so
#: their posteriors may only differ by accumulated floating-point noise.
MAX_POSTERIOR_DIVERGENCE = 1e-12

LOSSY_SEND_PROBABILITY = 0.7


def _row(point, label):
    return (
        point.peer_count,
        label,
        point.feedback_count,
        point.remote_messages_per_round,
        f"{point.dict_rounds_per_second:,.0f}",
        f"{point.array_rounds_per_second:,.0f}",
        f"{point.speedup:.1f}x",
        f"{point.max_posterior_difference:.1e}",
    )


@pytest.mark.parametrize("peer_count", SIZES)
def test_bench_embedded_round_throughput(benchmark, report, report_json, peer_count):
    feedbacks = throughput_feedbacks(peer_count, ttl=3)
    engine = EmbeddedMessagePassing(
        feedbacks,
        priors=0.5,
        delta=0.1,
        options=EmbeddedOptions(record_history=False),
    )
    benchmark(engine.run_round)

    lossless = run_embedded_throughput(
        peer_counts=(peer_count,), rounds=25, repeats=2
    ).point_for(peer_count)
    lossy = run_embedded_throughput(
        peer_counts=(peer_count,),
        rounds=25,
        repeats=1,
        send_probability=LOSSY_SEND_PROBABILITY,
    ).point_for(peer_count)

    lines = format_table(
        (
            "peers",
            "transport",
            "feedbacks",
            "remote msgs/round",
            "dict rounds/s",
            "array rounds/s",
            "speedup",
            "max |Δposterior|",
        ),
        [
            _row(lossless, "lossless"),
            _row(lossy, f"P(send)={LOSSY_SEND_PROBABILITY}"),
        ],
        title=(
            f"Embedded throughput — dict vs array state on the "
            f"{peer_count}-peer scale-free cycle evidence"
        ),
    )
    report(f"EX_embedded_throughput_{peer_count}_peers", lines)
    report_json(
        f"embedded_throughput_{peer_count}_peers",
        {
            "peer_count": peer_count,
            "feedback_count": lossless.feedback_count,
            "remote_messages_per_round": lossless.remote_messages_per_round,
            "dict_rounds_per_second": lossless.dict_rounds_per_second,
            "array_rounds_per_second": lossless.array_rounds_per_second,
            "array_messages_per_second": (
                lossless.array_rounds_per_second
                * lossless.remote_messages_per_round
            ),
            "speedup": lossless.speedup,
            "lossy_speedup": lossy.speedup,
            "max_posterior_difference": lossless.max_posterior_difference,
        },
    )

    assert lossless.max_posterior_difference <= MAX_POSTERIOR_DIVERGENCE
    assert lossy.max_posterior_difference <= MAX_POSTERIOR_DIVERGENCE
    if peer_count >= 64:
        for point in (lossless, lossy):
            assert point.speedup >= MIN_SPEEDUP_AT_64_PEERS, (
                f"array state is only {point.speedup:.1f}x faster than the "
                f"dict state at {peer_count} peers "
                f"(floor {MIN_SPEEDUP_AT_64_PEERS}x)"
            )


def test_bench_assessor_amortization(report, report_json):
    result = run_assessor_amortization(peer_count=32, attribute_count=10, ttl=3)

    lines = format_table(
        (
            "mode",
            "peers",
            "attributes",
            "probes",
            "plan compiles",
            "seconds",
            "max |Δposterior|",
        ),
        [
            (
                "probe per attribute",
                result.peer_count,
                result.attribute_count,
                result.uncached_probe_count,
                "-",
                f"{result.uncached_seconds:.3f}",
                "-",
            ),
            (
                "cached + sequential",
                result.peer_count,
                result.attribute_count,
                result.cached_probe_count,
                "-",
                f"{result.cached_seconds:.3f}",
                f"{result.max_posterior_difference:.1e}",
            ),
            (
                "cached + batched",
                result.peer_count,
                result.attribute_count,
                result.batched_probe_count,
                result.batched_plan_compiles,
                f"{result.batched_seconds:.3f}",
                f"{result.batched_max_posterior_difference:.1e}",
            ),
        ],
        title=(
            "Assessor amortization — structure cache + batched engine, "
            "32 peers"
        ),
    )
    report("EX_assessor_amortization_32_peers", lines)
    report_json(
        "assessor_amortization_32_peers",
        {
            "peer_count": result.peer_count,
            "attribute_count": result.attribute_count,
            "uncached_seconds": result.uncached_seconds,
            "cached_seconds": result.cached_seconds,
            "batched_seconds": result.batched_seconds,
            "cache_speedup": result.speedup,
            "batched_speedup": result.batched_speedup,
            "max_posterior_difference": result.max_posterior_difference,
            "batched_max_posterior_difference": (
                result.batched_max_posterior_difference
            ),
        },
    )

    assert result.attribute_count >= 5
    assert result.cached_probe_count == 1
    assert result.batched_probe_count == 1
    assert result.batched_plan_compiles == 1
    assert result.probe_amortization == result.attribute_count
    assert result.max_posterior_difference == 0.0
    assert result.batched_max_posterior_difference <= 1e-9
