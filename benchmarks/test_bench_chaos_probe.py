"""Chaos probe — discovery under a seeded fault plan, bit-identical anyway.

The acceptance bar of the resilience layer (``repro.reliability``): with a
seeded :class:`~repro.reliability.FaultPlan` crashing or hanging at least
25% of the discovery shards of a 256-peer full probe, the
:class:`~repro.reliability.ResilientDiscoveryExecutor` must

* produce the *same* merged structure set as a fault-free
  :class:`~repro.pdms.discovery.SerialDiscoveryExecutor` run, canonical
  keys in merge order (not "close" — identical);
* drive a :class:`~repro.core.quality.MappingQualityAssessor` to
  bit-identical posteriors (cycles-only evidence at this density, per the
  paper's §5.1.2 advice);
* complete within the bounded retry budget — every first retry of an
  attempt-0 fault is deterministically clean, so no shard is quarantined —
  while the reliability statistics count *exactly* the injected faults.

``BENCH_chaos_probe_256_peers.json`` records the injected-fault, retry and
fallback counts next to the fault-free and chaos wall-clock, so the
overhead of surviving the chaos stays visible across PRs.
"""

import time

import pytest

from repro.core.quality import MappingQualityAssessor
from repro.generators.scenarios import generate_scenario
from repro.pdms.discovery import SerialDiscoveryExecutor, plan_full_probe
from repro.reliability import (
    FAULT_CRASH,
    FAULT_HANG,
    FaultPlan,
    ResilientDiscoveryExecutor,
)

PEERS = 256

TTL = 3

WORKERS = 2

#: 2 workers × 4 shards per worker.
SHARDS = WORKERS * ResilientDiscoveryExecutor.SHARDS_PER_WORKER

#: Short deadline so each injected hang costs ~1s, not the default 120s;
#: the hang sleeps well past it so the parent always observes the expiry.
SHARD_TIMEOUT = 1.0

HANG_SECONDS = 4.0

#: Seeded chaos: seed 8 at rate 0.4 over 8 shards schedules 2 crashes and
#: 2 hangs — 50% of the shards, double the ≥25% acceptance floor.
FAULT_PLAN = FaultPlan.seeded(
    seed=8,
    rate=0.4,
    kinds=(FAULT_CRASH, FAULT_HANG),
    shards=SHARDS,
    hang_seconds=HANG_SECONDS,
)


def test_bench_chaos_probe(report_json):
    scheduled = FAULT_PLAN.scheduled(SHARDS)
    crash_count = sum(1 for kind in scheduled.values() if kind == FAULT_CRASH)
    hang_count = sum(1 for kind in scheduled.values() if kind == FAULT_HANG)
    faulted_fraction = FAULT_PLAN.faulted_shard_fraction(SHARDS)
    assert faulted_fraction >= 0.25, (
        f"chaos plan only disturbs {faulted_fraction:.0%} of the shards; "
        "the acceptance bar wants ≥25%"
    )

    scenario = generate_scenario(peer_count=PEERS, seed=PEERS)
    network = scenario.network
    plan = plan_full_probe(network, ttl=TTL, include_parallel_paths=True)

    # -- structure-set parity under chaos ---------------------------------
    started = time.perf_counter()
    serial_run = SerialDiscoveryExecutor().run(plan)
    serial_seconds = time.perf_counter() - started
    serial_cycles, serial_paths = serial_run.merged()

    chaos_executor = ResilientDiscoveryExecutor(
        workers=WORKERS,
        shard_timeout=SHARD_TIMEOUT,
        fault_plan=FAULT_PLAN,
    )
    started = time.perf_counter()
    chaos_run = chaos_executor.run(plan)
    chaos_seconds = time.perf_counter() - started
    chaos_cycles, chaos_paths = chaos_run.merged()

    assert [c.canonical_key() for c in chaos_cycles] == [
        c.canonical_key() for c in serial_cycles
    ], "chaos run diverged from the fault-free serial cycle set"
    assert [p.canonical_key() for p in chaos_paths] == [
        p.canonical_key() for p in serial_paths
    ], "chaos run diverged from the fault-free serial parallel-path set"

    stats = chaos_executor.last_run_statistics
    # Exactly the injected faults, nothing spurious: every crash surfaces
    # as one worker error, every hang as one deadline expiry, and each
    # fault costs exactly one retry (first retries are clean by
    # construction — seeded plans only schedule attempt 0).
    assert stats.injected_crashes == crash_count
    assert stats.injected_hangs == hang_count
    assert stats.worker_errors == crash_count
    assert stats.timeouts == hang_count
    assert stats.retries == crash_count + hang_count
    assert stats.quarantined_shards == 0, (
        "retry budget exhausted despite deterministically clean retries"
    )
    assert stats.serial_fallbacks == 0

    # -- assessor-posterior parity under chaos ----------------------------
    attribute = sorted(scenario.ground_truth)[0][1]
    reference_assessor = MappingQualityAssessor(
        network, ttl=TTL, include_parallel_paths=False, probe_executor="serial"
    )
    reference = reference_assessor.assess_attribute(attribute).posteriors

    chaos_assessor = MappingQualityAssessor(
        network,
        ttl=TTL,
        include_parallel_paths=False,
        probe_executor="process",
        probe_workers=WORKERS,
        shard_timeout=SHARD_TIMEOUT,
        fault_plan=FAULT_PLAN,
    )
    chaos_posteriors = chaos_assessor.assess_attribute(attribute).posteriors
    assert chaos_posteriors == reference, (
        "assessor posteriors diverged from the fault-free serial run"
    )
    assessor_stats = chaos_assessor.reliability_statistics()
    assert assessor_stats.faults_injected > 0, (
        "the assessor's probe fan-out never saw the chaos plan"
    )
    assert assessor_stats.quarantined_shards == 0

    report_json(
        "chaos_probe_256_peers",
        {
            "peer_count": PEERS,
            "ttl": TTL,
            "workers": WORKERS,
            "shards": SHARDS,
            "shard_timeout": SHARD_TIMEOUT,
            "fault_plan": FAULT_PLAN.spec(),
            "faulted_shard_fraction": faulted_fraction,
            "scheduled_crashes": crash_count,
            "scheduled_hangs": hang_count,
            "max_attempts": chaos_executor.max_attempts,
            "work_units": len(plan.work_units),
            "cycle_count": len(serial_cycles),
            "parallel_path_count": len(serial_paths),
            "serial_seconds": serial_seconds,
            "chaos_seconds": chaos_seconds,
            "chaos_overhead": (
                chaos_seconds / serial_seconds
                if serial_seconds > 0
                else float("inf")
            ),
            "structures_identical": True,
            "posteriors_identical": True,
            "probe_statistics": stats.as_dict(),
            "assessor_statistics": assessor_stats.as_dict(),
        },
    )
