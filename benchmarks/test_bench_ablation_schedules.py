"""E8 — ablation: periodic vs lazy message-passing schedules (§4.3).

The periodic schedule exchanges messages proactively every τ; the lazy
schedule piggybacks on query traffic and therefore has zero dedicated
communication overhead but converges at a speed proportional to the query
load.  Both must end up at the same posteriors.
"""

from repro.evaluation.experiments import run_schedule_comparison
from repro.evaluation.reporting import format_comparison, format_table


def run():
    return run_schedule_comparison(query_count=80)


def test_bench_ablation_schedules(benchmark, report):
    result = benchmark.pedantic(run, rounds=3, iterations=1)

    lines = [
        format_comparison(
            "both schedules flag the faulty mapping", "yes",
            "yes"
            if result.periodic_posteriors["p2->p4"] < 0.5
            and result.lazy_posteriors["p2->p4"] < 0.5
            else "NO",
        ),
        "",
        format_table(
            ("schedule", "rounds", "remote messages", "P(p2->p4 correct)"),
            [
                (
                    "periodic (proactive)",
                    result.periodic_rounds,
                    result.periodic_messages,
                    result.periodic_posteriors["p2->p4"],
                ),
                (
                    "lazy (piggybacked on queries)",
                    result.lazy_rounds,
                    result.lazy_messages,
                    result.lazy_posteriors["p2->p4"],
                ),
            ],
            title="Ablation — schedules of §4.3 on the introductory example",
        ),
    ]
    report("E8_ablation_schedules", "\n".join(lines))

    assert result.periodic_posteriors["p2->p4"] < 0.5
    assert result.lazy_posteriors["p2->p4"] < 0.5
    assert result.periodic_messages > 0
