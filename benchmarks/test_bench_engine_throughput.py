"""Extra ablation — message-passing throughput of the two BP backends.

The ROADMAP's north star is to run the paper's inference "as fast as the
hardware allows" at PDMS scales beyond the 8/16/32-peer reports.  This
benchmark builds the cycle-feedback factor graph of growing scale-free
networks and times the identical sum–product run on the edge-by-edge loop
reference and on the compiled vectorized backend
(:mod:`repro.factorgraph.compiled`), recording directed messages (edges)
per second for both.  It doubles as a regression tripwire: the vectorized
backend must stay well ahead of the loops (≥5× on the 32-peer graph) and
must agree with them on every marginal.
"""

import pytest

from repro.evaluation.experiments import run_engine_throughput, throughput_graph
from repro.evaluation.reporting import format_table
from repro.factorgraph.sum_product import run_sum_product

SIZES = (8, 16, 32, 64, 128)

#: Acceptance floor for the compiled backend on the 32-peer benchmark graph.
MIN_SPEEDUP_AT_32_PEERS = 5.0


def vectorized_run(graph):
    return run_sum_product(graph, backend="vectorized")


@pytest.mark.parametrize("peer_count", SIZES)
def test_bench_engine_throughput(benchmark, report, report_json, peer_count):
    pdms_graph = throughput_graph(peer_count, ttl=3)
    graph = pdms_graph.graph
    result = benchmark(vectorized_run, graph)

    point = run_engine_throughput(peer_counts=(peer_count,), repeats=3).point_for(
        peer_count
    )
    lines = format_table(
        (
            "peers",
            "edges",
            "iterations",
            "loop msg/s",
            "vectorized msg/s",
            "speedup",
            "max |Δmarginal|",
        ),
        [
            (
                peer_count,
                point.edge_count,
                point.vectorized_iterations,
                f"{point.loop_edges_per_second:,.0f}",
                f"{point.vectorized_edges_per_second:,.0f}",
                f"{point.speedup:.1f}x",
                f"{point.max_marginal_difference:.1e}",
            )
        ],
        title=(
            f"Engine throughput — loop vs vectorized backends on the "
            f"{peer_count}-peer scale-free feedback graph"
        ),
    )
    report(f"EX_engine_throughput_{peer_count}_peers", lines)
    report_json(
        f"engine_throughput_{peer_count}_peers",
        {
            "peer_count": peer_count,
            "edge_count": point.edge_count,
            "loop_messages_per_second": point.loop_edges_per_second,
            "vectorized_messages_per_second": point.vectorized_edges_per_second,
            "speedup": point.speedup,
            "max_marginal_difference": point.max_marginal_difference,
        },
    )

    assert result.iterations == point.vectorized_iterations
    assert point.max_marginal_difference < 1e-9
    if peer_count == 32:
        assert point.speedup >= MIN_SPEEDUP_AT_32_PEERS, (
            f"vectorized backend is only {point.speedup:.1f}x faster than the "
            f"loops on the 32-peer graph (floor {MIN_SPEEDUP_AT_32_PEERS}x)"
        )
