"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table/figure of the paper: it runs the
corresponding experiment (timed by pytest-benchmark) and emits a plain-text
"paper vs measured" report both to stdout and to ``benchmarks/reports/``.
The throughput / amortization benchmarks additionally emit machine-readable
``BENCH_*.json`` files (metrics + git revision) so the perf trajectory can
be tracked across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under benchmarks/reports/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text + "\n")
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def _git_revision() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else "unknown"


def emit_json_report(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark metrics as BENCH_<name>.json.

    ``payload`` holds the benchmark's own metrics (rates, speedups, peer
    counts…); the emitter stamps the git revision, a unix timestamp, the
    plan executor the run used (``REPRO_EXECUTOR``, the process-wide
    default — benchmarks that pin a different ``executor=`` override it in
    their payload) and the discovery executor / worker count of the probe
    phase (``REPRO_PROBE_EXECUTOR`` / ``REPRO_PROBE_WORKERS``, same
    override rule) so the perf trajectory across PRs stays attributable.
    A chaos fault plan active for the run (``REPRO_FAULT_PLAN``) is
    stamped too, so chaos-smoke numbers are never mistaken for clean ones.
    Correctness provenance rides along as well: ``lint_clean`` (did the
    tree pass ``repro-lint`` — linted once per process, cached) and
    ``lintkit_version`` (the rule-set version), so a perf number can never
    silently come from a tree that violates the architectural invariants.
    """
    from repro.lintkit import lint_status

    record = dict(payload)
    record.update(
        (key, value)
        for key, value in lint_status().items()
        if key not in record
    )
    record.setdefault("benchmark", name)
    record.setdefault("git_rev", _git_revision())
    record.setdefault("unix_time", int(time.time()))
    record.setdefault("executor", os.environ.get("REPRO_EXECUTOR", "numpy"))
    record.setdefault(
        "probe_executor", os.environ.get("REPRO_PROBE_EXECUTOR", "serial")
    )
    record.setdefault(
        "probe_workers", os.environ.get("REPRO_PROBE_WORKERS") or None
    )
    record.setdefault(
        "fault_plan", os.environ.get("REPRO_FAULT_PLAN") or None
    )
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[bench-json] {path}")


@pytest.fixture
def report():
    """Fixture handing benchmarks the report emitter."""
    return emit_report


@pytest.fixture
def report_json():
    """Fixture handing benchmarks the machine-readable metrics emitter."""
    return emit_json_report
