"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table/figure of the paper: it runs the
corresponding experiment (timed by pytest-benchmark) and emits a plain-text
"paper vs measured" report both to stdout and to ``benchmarks/reports/``.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under benchmarks/reports/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text + "\n")
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def report():
    """Fixture handing benchmarks the report emitter."""
    return emit_report
