from setuptools import find_packages, setup

setup(
    name="repro-pdms",
    version="0.9.0",
    description=(
        "Reproduction of 'Probabilistic Message Passing in Peer Data "
        "Management Systems' (Cudré-Mauroux, Aberer & Feher, ICDE 2006): "
        "decentralised schema-mapping quality assessment via loopy "
        "message passing on factor graphs"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.cli:main",
            "repro-lint=repro.lintkit.cli:main",
        ]
    },
)
